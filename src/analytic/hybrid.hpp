/**
 * @file
 * Hybrid-fidelity sweep planning.
 *
 * A figure sweep is a grid of latency-vs-load curves (one per scheme /
 * routing / platform combination). Most grid points are boring: well
 * below saturation the analytical model tracks the detailed simulator
 * within its calibrated bound, and well past it every curve is a
 * vertical wall. The information lives on the *frontier* — the
 * saturation knee of each curve and the loads where two schemes'
 * curves cross. The hybrid planner screens every point analytically,
 * then spends the cycle-accurate budget (<= 1/5 of the points, the
 * acceptance bar) on exactly that frontier, in priority order:
 * knees first, then the points just before them, then scheme
 * crossovers, then per-curve low-load anchors.
 */

#ifndef NOC_ANALYTIC_HYBRID_HPP
#define NOC_ANALYTIC_HYBRID_HPP

#include <vector>

#include "analytic/analytic_model.hpp"
#include "analytic/network_model.hpp"

namespace noc {

/** One sweep point the planner can reason about. */
struct HybridPoint
{
    SimConfig cfg;
    SyntheticPattern pattern = SyntheticPattern::UniformRandom;
    double load = 0.0;
    int packetSize = 5;
};

/** The planner's verdict over one sweep. */
struct HybridPlan
{
    /// Analytic screen of every point, in input order.
    std::vector<ModelEstimate> estimates;
    /// True where the point must run cycle-accurately.
    std::vector<bool> detailed;

    int detailedCount() const;
};

/**
 * Latency growth over a curve's lowest-load point that marks the
 * saturation knee for planning purposes.
 */
inline constexpr double kKneeFactor = 1.75;

/**
 * Screen `points` with `model` and pick the detailed frontier. At most
 * max(1, floor(points.size() * budgetFraction)) points are marked
 * detailed; selection and ordering are deterministic functions of the
 * input order.
 */
HybridPlan planHybridSweep(const std::vector<HybridPoint> &points,
                           AnalyticNetworkModel &model,
                           double budgetFraction = 0.2);

} // namespace noc

#endif // NOC_ANALYTIC_HYBRID_HPP
