/**
 * @file
 * O1TURN routing (Seo et al., ISCA 2005): each packet randomly picks XY or
 * YX at injection; the two orientations run in disjoint VC partitions
 * (virtual networks), which keeps the combination deadlock-free and gives
 * near-optimal worst-case throughput on 2D meshes.
 */

#ifndef NOC_ROUTING_O1TURN_HPP
#define NOC_ROUTING_O1TURN_HPP

#include "routing/dor.hpp"

namespace noc {

class O1TurnRouting : public RoutingAlgorithm
{
  public:
    explicit O1TurnRouting(const Mesh &mesh);

    /** cls 0 routes XY, cls 1 routes YX. */
    RouteDecision route(RouterId r, NodeId dst, int cls) const override;
    int numClasses() const override { return 2; }
    std::pair<VcId, int> vcRange(int cls, int num_vcs) const override;
    std::string name() const override { return "O1TURN"; }

    /** Inlinable route computation (see MeshDor::decide). */
    RouteDecision
    decide(RouterId r, NodeId dst, int cls) const
    {
        return cls == 0 ? xy_.decide(r, dst) : yx_.decide(r, dst);
    }

    /** Inlinable VC partition: lower half XY, upper half YX. */
    static std::pair<VcId, int>
    splitRange(int cls, int num_vcs)
    {
        const int half = num_vcs / 2;
        if (cls == 0)
            return {0, half};
        return {half, num_vcs - half};
    }

  private:
    MeshDor xy_;
    MeshDor yx_;
};

} // namespace noc

#endif // NOC_ROUTING_O1TURN_HPP
