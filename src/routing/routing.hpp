/**
 * @file
 * Routing algorithm abstraction.
 *
 * All algorithms are used in *lookahead* form (Galles' SGI Spider style,
 * paper §3.A): the decision for router R is computed one hop upstream and
 * carried by the head flit, so route computation is off the critical path.
 *
 * A routing class ("cls") identifies the virtual network a packet travels
 * in. Deterministic algorithms have one class; O1TURN has two (XY and YX)
 * and partitions the VC space between them for deadlock freedom.
 */

#ifndef NOC_ROUTING_ROUTING_HPP
#define NOC_ROUTING_ROUTING_HPP

#include <memory>
#include <string>
#include <utility>

#include "common/config.hpp"
#include "common/types.hpp"

namespace noc {

class Rng;
class Topology;

/** A routing decision at one router: output channel and drop-off. */
struct RouteDecision
{
    PortId outPort = kInvalidPort;
    int drop = 0;   ///< drop index on multidrop channels; 0 otherwise

    bool operator==(const RouteDecision &) const = default;
};

class RoutingAlgorithm
{
  public:
    virtual ~RoutingAlgorithm() = default;

    /**
     * Route a packet of class `cls` standing at router `r` towards node
     * `dst`. Returns the terminal port when `dst` is attached to `r`.
     */
    virtual RouteDecision route(RouterId r, NodeId dst, int cls) const = 0;

    /** Number of routing classes (virtual networks). */
    virtual int numClasses() const { return 1; }

    /** VC range {base, count} a class may use out of `num_vcs` VCs. */
    virtual std::pair<VcId, int> vcRange(int cls, int num_vcs) const;

    /**
     * Position-dependent VC range for a packet of `cls` from `src`
     * standing at router `r` en route to `dst`. Defaults to vcRange();
     * torus routing overrides it to implement dateline VC classes
     * (packets that crossed the wraparound use the upper half of the VC
     * space, which breaks ring channel-dependency cycles).
     */
    virtual std::pair<VcId, int> vcRangeAt(RouterId r, NodeId src,
                                           NodeId dst, int cls,
                                           int num_vcs) const;

    /**
     * Pick the routing class for a packet about to inject at router `r`
     * towards `dst`. `vc_credits` is the injection port's per-VC free
     * credit array (`num_vcs` entries) — the only congestion signal an
     * NI has locally. The default draws uniformly at random among the
     * classes (O1TURN's policy; single-class algorithms return 0
     * without consuming the RNG); adaptive routing overrides it with a
     * backlog-driven choice.
     */
    virtual int chooseClass(RouterId r, NodeId dst, Rng &rng,
                            const int *vc_credits, int num_vcs) const;

    virtual std::string name() const = 0;
};

/**
 * Build the routing algorithm for a topology. Dispatches on the concrete
 * topology type; fails fatally on unsupported combinations (e.g. O1TURN
 * on MECS).
 */
std::unique_ptr<RoutingAlgorithm> makeRouting(RoutingKind kind,
                                              const Topology &topo);

} // namespace noc

#endif // NOC_ROUTING_ROUTING_HPP
