#include "routing/dor.hpp"

#include "common/log.hpp"
#include "topology/fbfly.hpp"
#include "topology/mecs.hpp"
#include "topology/mesh.hpp"

namespace noc {

MeshDor::MeshDor(const Mesh &mesh, bool x_first)
    : mesh_(mesh), xFirst_(x_first)
{
}

RouteDecision
MeshDor::route(RouterId r, NodeId dst, int cls) const
{
    (void)cls;
    return decide(r, dst);
}

std::string
MeshDor::name() const
{
    return xFirst_ ? "XY" : "YX";
}

FbflyDor::FbflyDor(const FlattenedButterfly &fbfly, bool x_first)
    : fbfly_(fbfly), xFirst_(x_first)
{
}

RouteDecision
FbflyDor::route(RouterId r, NodeId dst, int cls) const
{
    (void)cls;
    const RouterId dst_router = fbfly_.nodeRouter(dst);
    if (dst_router == r)
        return {fbfly_.nodePort(dst), 0};

    const int dst_x = fbfly_.xOf(dst_router);
    const int dst_y = fbfly_.yOf(dst_router);
    const bool x_off = dst_x != fbfly_.xOf(r);
    const bool y_off = dst_y != fbfly_.yOf(r);

    if (xFirst_ ? x_off : (x_off && !y_off))
        return {fbfly_.rowPort(r, dst_x), 0};
    return {fbfly_.colPort(r, dst_y), 0};
}

std::string
FbflyDor::name() const
{
    return xFirst_ ? "XY" : "YX";
}

MecsDor::MecsDor(const Mecs &mecs, bool x_first)
    : mecs_(mecs), xFirst_(x_first)
{
}

RouteDecision
MecsDor::route(RouterId r, NodeId dst, int cls) const
{
    (void)cls;
    const RouterId dst_router = mecs_.nodeRouter(dst);
    if (dst_router == r)
        return {mecs_.nodePort(dst), 0};

    const int dx = mecs_.xOf(dst_router) - mecs_.xOf(r);
    const int dy = mecs_.yOf(dst_router) - mecs_.yOf(r);

    const bool go_x = xFirst_ ? dx != 0 : (dx != 0 && dy == 0);
    if (go_x) {
        const auto dir = dx > 0 ? Mecs::East : Mecs::West;
        return {mecs_.dirPort(dir), std::abs(dx) - 1};
    }
    const auto dir = dy > 0 ? Mecs::South : Mecs::North;
    return {mecs_.dirPort(dir), std::abs(dy) - 1};
}

std::string
MecsDor::name() const
{
    return xFirst_ ? "XY" : "YX";
}

} // namespace noc
