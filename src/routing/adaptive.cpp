#include "routing/adaptive.hpp"

#include <cstdint>

#include "common/log.hpp"
#include "routing/o1turn.hpp"

namespace noc {

AdaptiveRouting::AdaptiveRouting(const Mesh &mesh)
    : xy_(mesh, true), yx_(mesh, false)
{
}

RouteDecision
AdaptiveRouting::route(RouterId r, NodeId dst, int cls) const
{
    NOC_ASSERT(cls == 0 || cls == 1,
               "adaptive routing has exactly two classes");
    return decide(r, dst, cls);
}

std::pair<VcId, int>
AdaptiveRouting::vcRange(int cls, int num_vcs) const
{
    NOC_ASSERT(num_vcs >= 2, "adaptive routing needs at least two VCs");
    return O1TurnRouting::splitRange(cls, num_vcs);
}

int
AdaptiveRouting::chooseClass(RouterId r, NodeId dst, Rng &rng,
                             const int *vc_credits, int num_vcs) const
{
    (void)r;
    (void)dst;
    (void)rng;
    const auto [base0, count0] = O1TurnRouting::splitRange(0, num_vcs);
    const auto [base1, count1] = O1TurnRouting::splitRange(1, num_vcs);
    std::int64_t free0 = 0;
    std::int64_t free1 = 0;
    for (int v = 0; v < count0; ++v)
        free0 += vc_credits[base0 + v];
    for (int v = 0; v < count1; ++v)
        free1 += vc_credits[base1 + v];
    // Compare per-partition backlog normalised by width: free0/count0
    // vs free1/count1, cross-multiplied to stay in integers.
    return free1 * count0 > free0 * count1 ? 1 : 0;
}

} // namespace noc
