/**
 * @file
 * Dimension-order routing for the mesh family and the express topologies.
 */

#ifndef NOC_ROUTING_DOR_HPP
#define NOC_ROUTING_DOR_HPP

#include "routing/routing.hpp"
#include "topology/mesh.hpp"

namespace noc {

class FlattenedButterfly;
class Mecs;

/** XY or YX dimension-order routing on a (concentrated) mesh. */
class MeshDor : public RoutingAlgorithm
{
  public:
    MeshDor(const Mesh &mesh, bool x_first);

    RouteDecision route(RouterId r, NodeId dst, int cls) const override;
    std::string name() const override;

    /**
     * The route computation itself, inlinable (the virtual route() is a
     * thin wrapper). Specialized kernels call this through a policy
     * struct so the hot path pays no virtual dispatch.
     */
    RouteDecision
    decide(RouterId r, NodeId dst) const
    {
        const RouterId dst_router = mesh_.nodeRouter(dst);
        if (dst_router == r)
            return {mesh_.nodePort(dst), 0};

        const int dx = mesh_.xOf(dst_router) - mesh_.xOf(r);
        const int dy = mesh_.yOf(dst_router) - mesh_.yOf(r);

        Mesh::Direction dir;
        if (xFirst_) {
            if (dx != 0)
                dir = dx > 0 ? Mesh::East : Mesh::West;
            else
                dir = dy > 0 ? Mesh::South : Mesh::North;
        } else {
            if (dy != 0)
                dir = dy > 0 ? Mesh::South : Mesh::North;
            else
                dir = dx > 0 ? Mesh::East : Mesh::West;
        }
        return {mesh_.dirPort(dir), 0};
    }

  private:
    const Mesh &mesh_;
    bool xFirst_;
};

/** Dimension-order routing on the flattened butterfly (one hop per dim). */
class FbflyDor : public RoutingAlgorithm
{
  public:
    FbflyDor(const FlattenedButterfly &fbfly, bool x_first);

    RouteDecision route(RouterId r, NodeId dst, int cls) const override;
    std::string name() const override;

  private:
    const FlattenedButterfly &fbfly_;
    bool xFirst_;
};

/** Dimension-order routing on MECS (one multidrop channel hop per dim). */
class MecsDor : public RoutingAlgorithm
{
  public:
    MecsDor(const Mecs &mecs, bool x_first);

    RouteDecision route(RouterId r, NodeId dst, int cls) const override;
    std::string name() const override;

  private:
    const Mecs &mecs_;
    bool xFirst_;
};

} // namespace noc

#endif // NOC_ROUTING_DOR_HPP
