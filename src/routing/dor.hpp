/**
 * @file
 * Dimension-order routing for the mesh family and the express topologies.
 */

#ifndef NOC_ROUTING_DOR_HPP
#define NOC_ROUTING_DOR_HPP

#include "routing/routing.hpp"

namespace noc {

class Mesh;
class FlattenedButterfly;
class Mecs;

/** XY or YX dimension-order routing on a (concentrated) mesh. */
class MeshDor : public RoutingAlgorithm
{
  public:
    MeshDor(const Mesh &mesh, bool x_first);

    RouteDecision route(RouterId r, NodeId dst, int cls) const override;
    std::string name() const override;

  private:
    const Mesh &mesh_;
    bool xFirst_;
};

/** Dimension-order routing on the flattened butterfly (one hop per dim). */
class FbflyDor : public RoutingAlgorithm
{
  public:
    FbflyDor(const FlattenedButterfly &fbfly, bool x_first);

    RouteDecision route(RouterId r, NodeId dst, int cls) const override;
    std::string name() const override;

  private:
    const FlattenedButterfly &fbfly_;
    bool xFirst_;
};

/** Dimension-order routing on MECS (one multidrop channel hop per dim). */
class MecsDor : public RoutingAlgorithm
{
  public:
    MecsDor(const Mecs &mecs, bool x_first);

    RouteDecision route(RouterId r, NodeId dst, int cls) const override;
    std::string name() const override;

  private:
    const Mecs &mecs_;
    bool xFirst_;
};

} // namespace noc

#endif // NOC_ROUTING_DOR_HPP
