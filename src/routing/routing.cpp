#include "routing/routing.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"
#include "routing/adaptive.hpp"
#include "routing/dor.hpp"
#include "routing/o1turn.hpp"
#include "routing/torus_dor.hpp"
#include "topology/fbfly.hpp"
#include "topology/mecs.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"

namespace noc {

std::pair<VcId, int>
RoutingAlgorithm::vcRange(int cls, int num_vcs) const
{
    (void)cls;
    return {0, num_vcs};
}

std::pair<VcId, int>
RoutingAlgorithm::vcRangeAt(RouterId r, NodeId src, NodeId dst, int cls,
                            int num_vcs) const
{
    (void)r;
    (void)src;
    (void)dst;
    return vcRange(cls, num_vcs);
}

int
RoutingAlgorithm::chooseClass(RouterId r, NodeId dst, Rng &rng,
                              const int *vc_credits, int num_vcs) const
{
    (void)r;
    (void)dst;
    (void)vc_credits;
    (void)num_vcs;
    // Exactly the historical NI policy: single-class algorithms consume
    // no randomness (byte-identity with pre-chooseClass output), multi-
    // class ones draw uniformly.
    const int n = numClasses();
    if (n <= 1)
        return 0;
    return static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(n)));
}

std::unique_ptr<RoutingAlgorithm>
makeRouting(RoutingKind kind, const Topology &topo)
{
    if (const auto *mesh = dynamic_cast<const Mesh *>(&topo)) {
        switch (kind) {
          case RoutingKind::XY:
            return std::make_unique<MeshDor>(*mesh, true);
          case RoutingKind::YX:
            return std::make_unique<MeshDor>(*mesh, false);
          case RoutingKind::O1Turn:
            return std::make_unique<O1TurnRouting>(*mesh);
          case RoutingKind::Adaptive:
            return std::make_unique<AdaptiveRouting>(*mesh);
        }
    }
    if (const auto *fbfly = dynamic_cast<const FlattenedButterfly *>(&topo)) {
        switch (kind) {
          case RoutingKind::XY:
            return std::make_unique<FbflyDor>(*fbfly, true);
          case RoutingKind::YX:
            return std::make_unique<FbflyDor>(*fbfly, false);
          case RoutingKind::O1Turn:
            NOC_FATAL("O1TURN is not defined on the flattened butterfly");
          case RoutingKind::Adaptive:
            NOC_FATAL("adaptive routing is not defined on the flattened "
                      "butterfly");
        }
    }
    if (const auto *torus = dynamic_cast<const Torus *>(&topo)) {
        switch (kind) {
          case RoutingKind::XY:
            return std::make_unique<TorusDor>(*torus, true);
          case RoutingKind::YX:
            return std::make_unique<TorusDor>(*torus, false);
          case RoutingKind::O1Turn:
            NOC_FATAL("O1TURN is not defined on the torus");
          case RoutingKind::Adaptive:
            NOC_FATAL("adaptive routing is not defined on the torus");
        }
    }
    if (const auto *mecs = dynamic_cast<const Mecs *>(&topo)) {
        switch (kind) {
          case RoutingKind::XY:
            return std::make_unique<MecsDor>(*mecs, true);
          case RoutingKind::YX:
            return std::make_unique<MecsDor>(*mecs, false);
          case RoutingKind::O1Turn:
            NOC_FATAL("O1TURN is not defined on MECS");
          case RoutingKind::Adaptive:
            NOC_FATAL("adaptive routing is not defined on MECS");
        }
    }
    NOC_FATAL("no routing algorithm for topology " + topo.name());
}

} // namespace noc
