/**
 * @file
 * Inlinable routing policies for the specialized router kernels.
 *
 * Each policy is a stateless adapter over one concrete RoutingAlgorithm
 * subclass: it static_casts the router's `RoutingAlgorithm` reference
 * to the concrete type (the kernel factory has verified the dynamic
 * type with typeid before selecting a specialized kernel, so the cast
 * is exact) and calls the class's non-virtual `decide()` / range
 * helpers. The route math itself lives in the routing headers — the
 * policies add no behaviour, only a devirtualized call path.
 *
 * Policies also carry the kernel-name fragment used in kernel labels
 * ("mesh-dor/pseudo-sb" etc.).
 */

#ifndef NOC_ROUTING_POLICIES_HPP
#define NOC_ROUTING_POLICIES_HPP

#include <utility>

#include "routing/dor.hpp"
#include "routing/o1turn.hpp"
#include "routing/torus_dor.hpp"

namespace noc {

/** XY/YX dimension-order routing on Mesh and CMesh. */
struct MeshDorRoute
{
    using Algo = MeshDor;
    static constexpr const char *kName = "mesh-dor";

    static RouteDecision
    route(const Algo &a, RouterId r, NodeId dst, int cls)
    {
        (void)cls;
        return a.decide(r, dst);
    }

    /** MeshDor uses the whole VC space for its single class. */
    static std::pair<VcId, int>
    vcRangeAt(const Algo &a, RouterId r, NodeId src, NodeId dst, int cls,
              int num_vcs)
    {
        (void)a; (void)r; (void)src; (void)dst; (void)cls;
        return {0, num_vcs};
    }
};

/** O1TURN on Mesh/CMesh: two classes, VC space split in half. */
struct O1TurnRoute
{
    using Algo = O1TurnRouting;
    static constexpr const char *kName = "o1turn";

    static RouteDecision
    route(const Algo &a, RouterId r, NodeId dst, int cls)
    {
        return a.decide(r, dst, cls);
    }

    static std::pair<VcId, int>
    vcRangeAt(const Algo &a, RouterId r, NodeId src, NodeId dst, int cls,
              int num_vcs)
    {
        (void)a; (void)r; (void)src; (void)dst;
        return O1TurnRouting::splitRange(cls, num_vcs);
    }
};

/** Minimal DOR on the torus with dateline VC classes. */
struct TorusDorRoute
{
    using Algo = TorusDor;
    static constexpr const char *kName = "torus-dor";

    static RouteDecision
    route(const Algo &a, RouterId r, NodeId dst, int cls)
    {
        (void)cls;
        return a.decide(r, dst);
    }

    static std::pair<VcId, int>
    vcRangeAt(const Algo &a, RouterId r, NodeId src, NodeId dst, int cls,
              int num_vcs)
    {
        (void)cls;
        return a.datelineRange(r, src, dst, num_vcs);
    }
};

} // namespace noc

#endif // NOC_ROUTING_POLICIES_HPP
