#include "routing/torus_dor.hpp"

#include "common/log.hpp"
#include "topology/torus.hpp"

namespace noc {

TorusDor::TorusDor(const Torus &torus, bool x_first)
    : torus_(torus), xFirst_(x_first)
{
}

int
TorusDor::minimalStep(int from, int to, int size)
{
    if (from == to)
        return 0;
    const int right = (to - from + size) % size;
    return 2 * right <= size ? 1 : -1;
}

bool
TorusDor::crossedDateline(int from, int at, int dir)
{
    // Travelling "right" (+1) the wraparound sits between size-1 and 0:
    // having landed on a smaller coordinate than the origin means it was
    // crossed. Minimal routes never travel more than half the ring, so
    // the comparison is unambiguous.
    if (dir > 0)
        return at < from;
    if (dir < 0)
        return at > from;
    return false;
}

RouteDecision
TorusDor::route(RouterId r, NodeId dst, int cls) const
{
    (void)cls;
    return decide(r, dst);
}

std::pair<VcId, int>
TorusDor::vcRangeAt(RouterId r, NodeId src, NodeId dst, int cls,
                    int num_vcs) const
{
    (void)cls;
    NOC_ASSERT(num_vcs >= 2, "torus datelines need at least two VCs");
    return datelineRange(r, src, dst, num_vcs);
}

std::string
TorusDor::name() const
{
    return xFirst_ ? "XY" : "YX";
}

} // namespace noc
