#include "routing/torus_dor.hpp"

#include "common/log.hpp"
#include "topology/torus.hpp"

namespace noc {

TorusDor::TorusDor(const Torus &torus, bool x_first)
    : torus_(torus), xFirst_(x_first)
{
}

int
TorusDor::minimalStep(int from, int to, int size)
{
    if (from == to)
        return 0;
    const int right = (to - from + size) % size;
    return 2 * right <= size ? 1 : -1;
}

bool
TorusDor::crossedDateline(int from, int at, int dir)
{
    // Travelling "right" (+1) the wraparound sits between size-1 and 0:
    // having landed on a smaller coordinate than the origin means it was
    // crossed. Minimal routes never travel more than half the ring, so
    // the comparison is unambiguous.
    if (dir > 0)
        return at < from;
    if (dir < 0)
        return at > from;
    return false;
}

RouteDecision
TorusDor::route(RouterId r, NodeId dst, int cls) const
{
    (void)cls;
    const RouterId dst_router = torus_.nodeRouter(dst);
    if (dst_router == r)
        return {torus_.nodePort(dst), 0};

    const int dx_step =
        minimalStep(torus_.xOf(r), torus_.xOf(dst_router), torus_.width());
    const int dy_step = minimalStep(torus_.yOf(r), torus_.yOf(dst_router),
                                    torus_.height());
    Torus::Direction dir;
    if (xFirst_ ? dx_step != 0 : (dx_step != 0 && dy_step == 0))
        dir = dx_step > 0 ? Torus::East : Torus::West;
    else
        dir = dy_step > 0 ? Torus::South : Torus::North;
    return {torus_.dirPort(dir), 0};
}

std::pair<VcId, int>
TorusDor::vcRangeAt(RouterId r, NodeId src, NodeId dst, int cls,
                    int num_vcs) const
{
    (void)cls;
    NOC_ASSERT(num_vcs >= 2, "torus datelines need at least two VCs");
    const RouterId src_router = torus_.nodeRouter(src);
    const RouterId dst_router = torus_.nodeRouter(dst);

    // The range applies to the channel the router at `r` is about to
    // allocate — the input VC of the *next* router — so the crossing
    // test is evaluated at the downstream position. That puts the wrap
    // link itself in the crossed class, which is what actually breaks
    // the ring cycle (the dateline sits on the wrap link).
    //
    // Which dimension is being corrected? With X-first order the X
    // phase lasts while the column is wrong; afterwards the Y rule
    // applies. Ejection channels (r == destination) are sinks; they use
    // the uncrossed class.
    bool crossed = false;
    const bool x_phase = xFirst_
        ? torus_.xOf(r) != torus_.xOf(dst_router)
        : torus_.yOf(r) == torus_.yOf(dst_router) &&
            torus_.xOf(r) != torus_.xOf(dst_router);
    if (x_phase) {
        const int dir = minimalStep(torus_.xOf(src_router),
                                    torus_.xOf(dst_router), torus_.width());
        const int next =
            (torus_.xOf(r) + dir + torus_.width()) % torus_.width();
        crossed = crossedDateline(torus_.xOf(src_router), next, dir);
    } else if (torus_.yOf(r) != torus_.yOf(dst_router)) {
        const int dir = minimalStep(torus_.yOf(src_router),
                                    torus_.yOf(dst_router),
                                    torus_.height());
        const int next =
            (torus_.yOf(r) + dir + torus_.height()) % torus_.height();
        crossed = crossedDateline(torus_.yOf(src_router), next, dir);
    }

    const int lower = (num_vcs + 1) / 2;
    if (crossed)
        return {lower, num_vcs - lower};
    return {0, lower};
}

std::string
TorusDor::name() const
{
    return xFirst_ ? "XY" : "YX";
}

} // namespace noc
