/**
 * @file
 * Minimal dimension-order routing on the torus with dateline VC
 * classes (extension beyond the paper's mesh family).
 *
 * Each dimension is traversed in the minimal direction (ties towards
 * increasing coordinate). Within a ring, a packet starts in the lower
 * half of the VC space and switches to the upper half once it has
 * crossed the wraparound link ("dateline"), which breaks the ring's
 * channel-dependency cycle; dimension order breaks cycles across
 * dimensions, so the combination is deadlock-free with 2+ VCs.
 */

#ifndef NOC_ROUTING_TORUS_DOR_HPP
#define NOC_ROUTING_TORUS_DOR_HPP

#include "routing/routing.hpp"
#include "topology/torus.hpp"

namespace noc {

class TorusDor : public RoutingAlgorithm
{
  public:
    TorusDor(const Torus &torus, bool x_first);

    RouteDecision route(RouterId r, NodeId dst, int cls) const override;
    std::pair<VcId, int> vcRangeAt(RouterId r, NodeId src, NodeId dst,
                                   int cls, int num_vcs) const override;
    std::string name() const override;

    /**
     * True if a packet that started at ring position `from`, travelling
     * in direction `dir` (+1/-1), has already passed the wraparound by
     * the time it stands at `at`. Exposed for tests.
     */
    static bool crossedDateline(int from, int at, int dir);

    /** Minimal-direction step (-1, 0, +1) from `from` towards `to`;
     *  ties (exactly half the ring) resolve to +1. */
    static int minimalStep(int from, int to, int size);

    /** Inlinable route computation (see MeshDor::decide). */
    RouteDecision
    decide(RouterId r, NodeId dst) const
    {
        const RouterId dst_router = torus_.nodeRouter(dst);
        if (dst_router == r)
            return {torus_.nodePort(dst), 0};

        const int dx_step = minimalStep(torus_.xOf(r),
                                        torus_.xOf(dst_router),
                                        torus_.width());
        const int dy_step = minimalStep(torus_.yOf(r),
                                        torus_.yOf(dst_router),
                                        torus_.height());
        Torus::Direction dir;
        if (xFirst_ ? dx_step != 0 : (dx_step != 0 && dy_step == 0))
            dir = dx_step > 0 ? Torus::East : Torus::West;
        else
            dir = dy_step > 0 ? Torus::South : Torus::North;
        return {torus_.dirPort(dir), 0};
    }

    /** Inlinable dateline VC-range computation (see vcRangeAt). */
    std::pair<VcId, int>
    datelineRange(RouterId r, NodeId src, NodeId dst, int num_vcs) const
    {
        const RouterId src_router = torus_.nodeRouter(src);
        const RouterId dst_router = torus_.nodeRouter(dst);

        // The range applies to the channel the router at `r` is about to
        // allocate — the input VC of the *next* router — so the crossing
        // test is evaluated at the downstream position. That puts the
        // wrap link itself in the crossed class, which is what actually
        // breaks the ring cycle (the dateline sits on the wrap link).
        //
        // Which dimension is being corrected? With X-first order the X
        // phase lasts while the column is wrong; afterwards the Y rule
        // applies. Ejection channels (r == destination) are sinks; they
        // use the uncrossed class.
        bool crossed = false;
        const bool x_phase = xFirst_
            ? torus_.xOf(r) != torus_.xOf(dst_router)
            : torus_.yOf(r) == torus_.yOf(dst_router) &&
                torus_.xOf(r) != torus_.xOf(dst_router);
        if (x_phase) {
            const int dir = minimalStep(torus_.xOf(src_router),
                                        torus_.xOf(dst_router),
                                        torus_.width());
            const int next =
                (torus_.xOf(r) + dir + torus_.width()) % torus_.width();
            crossed = crossedDateline(torus_.xOf(src_router), next, dir);
        } else if (torus_.yOf(r) != torus_.yOf(dst_router)) {
            const int dir = minimalStep(torus_.yOf(src_router),
                                        torus_.yOf(dst_router),
                                        torus_.height());
            const int next =
                (torus_.yOf(r) + dir + torus_.height()) % torus_.height();
            crossed = crossedDateline(torus_.yOf(src_router), next, dir);
        }

        const int lower = (num_vcs + 1) / 2;
        if (crossed)
            return {lower, num_vcs - lower};
        return {0, lower};
    }

  private:
    const Torus &torus_;
    bool xFirst_;
};

} // namespace noc

#endif // NOC_ROUTING_TORUS_DOR_HPP
