/**
 * @file
 * Minimal dimension-order routing on the torus with dateline VC
 * classes (extension beyond the paper's mesh family).
 *
 * Each dimension is traversed in the minimal direction (ties towards
 * increasing coordinate). Within a ring, a packet starts in the lower
 * half of the VC space and switches to the upper half once it has
 * crossed the wraparound link ("dateline"), which breaks the ring's
 * channel-dependency cycle; dimension order breaks cycles across
 * dimensions, so the combination is deadlock-free with 2+ VCs.
 */

#ifndef NOC_ROUTING_TORUS_DOR_HPP
#define NOC_ROUTING_TORUS_DOR_HPP

#include "routing/routing.hpp"

namespace noc {

class Torus;

class TorusDor : public RoutingAlgorithm
{
  public:
    TorusDor(const Torus &torus, bool x_first);

    RouteDecision route(RouterId r, NodeId dst, int cls) const override;
    std::pair<VcId, int> vcRangeAt(RouterId r, NodeId src, NodeId dst,
                                   int cls, int num_vcs) const override;
    std::string name() const override;

    /**
     * True if a packet that started at ring position `from`, travelling
     * in direction `dir` (+1/-1), has already passed the wraparound by
     * the time it stands at `at`. Exposed for tests.
     */
    static bool crossedDateline(int from, int at, int dir);

    /** Minimal-direction step (-1, 0, +1) from `from` towards `to`;
     *  ties (exactly half the ring) resolve to +1. */
    static int minimalStep(int from, int to, int size);

  private:
    const Torus &torus_;
    bool xFirst_;
};

} // namespace noc

#endif // NOC_ROUTING_TORUS_DOR_HPP
