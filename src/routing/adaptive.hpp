/**
 * @file
 * Load-adaptive routing (UGAL-L flavoured, Singh et al. 2004): each
 * packet picks between the two dimension-order orientations (XY / YX)
 * at injection based on *local* backlog — the free-credit count of the
 * injection port's VC partition backing each orientation. The two
 * orientations run in disjoint VC partitions exactly like O1TURN, so
 * each virtual network stays dimension-ordered and deadlock-free; what
 * changes versus O1TURN is only the per-packet choice (congestion-
 * driven instead of a coin flip).
 *
 * The classic UGAL non-minimal escape path is provided by composition:
 * under topology churn or link death the FaultRouting decorator wraps
 * this algorithm and detours decisions whose output link is
 * unavailable (minimal progress first, misroute second), falling back
 * to fault-aware minimal routing when a region is dark. Adaptive
 * routing is deterministic — the backlog signal is shard-local state —
 * so it remains eligible for the sharded stepping path.
 */

#ifndef NOC_ROUTING_ADAPTIVE_HPP
#define NOC_ROUTING_ADAPTIVE_HPP

#include "routing/dor.hpp"

namespace noc {

class AdaptiveRouting : public RoutingAlgorithm
{
  public:
    explicit AdaptiveRouting(const Mesh &mesh);

    /** cls 0 routes XY, cls 1 routes YX (same classes as O1TURN). */
    RouteDecision route(RouterId r, NodeId dst, int cls) const override;
    int numClasses() const override { return 2; }
    std::pair<VcId, int> vcRange(int cls, int num_vcs) const override;

    /**
     * UGAL-L choice: compare the injection port's free credits per VC
     * partition, normalised by partition width (cross-multiplied so an
     * odd VC split compares fairly). Ties go to XY; no randomness is
     * consumed, keeping the decision replayable and shard-safe.
     */
    int chooseClass(RouterId r, NodeId dst, Rng &rng,
                    const int *vc_credits, int num_vcs) const override;

    std::string name() const override { return "Adaptive"; }

    /** Inlinable route computation (see MeshDor::decide). */
    RouteDecision
    decide(RouterId r, NodeId dst, int cls) const
    {
        return cls == 0 ? xy_.decide(r, dst) : yx_.decide(r, dst);
    }

  private:
    MeshDor xy_;
    MeshDor yx_;
};

} // namespace noc

#endif // NOC_ROUTING_ADAPTIVE_HPP
