#include "routing/o1turn.hpp"

#include "common/log.hpp"

namespace noc {

O1TurnRouting::O1TurnRouting(const Mesh &mesh)
    : xy_(mesh, true), yx_(mesh, false)
{
}

RouteDecision
O1TurnRouting::route(RouterId r, NodeId dst, int cls) const
{
    NOC_ASSERT(cls == 0 || cls == 1, "O1TURN has exactly two classes");
    return cls == 0 ? xy_.route(r, dst, 0) : yx_.route(r, dst, 0);
}

std::pair<VcId, int>
O1TurnRouting::vcRange(int cls, int num_vcs) const
{
    NOC_ASSERT(num_vcs >= 2, "O1TURN needs at least two VCs");
    const int half = num_vcs / 2;
    if (cls == 0)
        return {0, half};
    return {half, num_vcs - half};
}

} // namespace noc
