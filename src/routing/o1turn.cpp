#include "routing/o1turn.hpp"

#include "common/log.hpp"

namespace noc {

O1TurnRouting::O1TurnRouting(const Mesh &mesh)
    : xy_(mesh, true), yx_(mesh, false)
{
}

RouteDecision
O1TurnRouting::route(RouterId r, NodeId dst, int cls) const
{
    NOC_ASSERT(cls == 0 || cls == 1, "O1TURN has exactly two classes");
    return decide(r, dst, cls);
}

std::pair<VcId, int>
O1TurnRouting::vcRange(int cls, int num_vcs) const
{
    NOC_ASSERT(num_vcs >= 2, "O1TURN needs at least two VCs");
    return splitRange(cls, num_vcs);
}

} // namespace noc
