#include "verify/verify.hpp"

#include <algorithm>
#include <sstream>

#include "common/log.hpp"
#include "network/network.hpp"

namespace noc {

const char *
toString(Invariant inv)
{
    switch (inv) {
      case Invariant::Credits: return "credits";
      case Invariant::VcState: return "state";
      case Invariant::Circuits: return "pc";
      case Invariant::Ordering: return "order";
      case Invariant::Conserve: return "conserve";
      case Invariant::Deadlock: return "deadlock";
    }
    return "?";
}

std::uint32_t
verifyMaskFromSpec(const std::string &spec)
{
    std::uint32_t mask = 0;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? spec.size() : comma;
        const std::string item = spec.substr(start, end - start);
        if (item == "all") {
            mask |= kAllInvariants;
        } else if (item == "off" || item.empty()) {
            // explicit no-op: lets NOC_VERIFY=off disable the env hook
        } else if (item == "credits") {
            mask |= static_cast<std::uint32_t>(Invariant::Credits);
        } else if (item == "state") {
            mask |= static_cast<std::uint32_t>(Invariant::VcState);
        } else if (item == "pc") {
            mask |= static_cast<std::uint32_t>(Invariant::Circuits);
        } else if (item == "order") {
            mask |= static_cast<std::uint32_t>(Invariant::Ordering);
        } else if (item == "conserve") {
            mask |= static_cast<std::uint32_t>(Invariant::Conserve);
        } else if (item == "deadlock") {
            mask |= static_cast<std::uint32_t>(Invariant::Deadlock);
        } else {
            NOC_FATAL("unknown invariant: '" + item +
                      "' (expected credits, state, pc, order, conserve, "
                      "deadlock, all or off)");
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return mask;
}

std::string
Violation::describe() const
{
    std::ostringstream os;
    os << "cycle " << cycle;
    if (router != kInvalidRouter)
        os << " router " << router;
    os << " [" << toString(kind) << "] " << detail;
    return os.str();
}

// --- WaitForGraph ---

int
WaitForGraph::addNode(std::string label)
{
    labels_.push_back(std::move(label));
    edges_.emplace_back();
    return static_cast<int>(labels_.size()) - 1;
}

void
WaitForGraph::addEdge(int from, int to)
{
    edges_[from].push_back(to);
}

std::vector<int>
WaitForGraph::findCycle() const
{
    // Iterative DFS with three colours; on a back edge, walk the
    // explicit stack back to the target to recover the cycle.
    enum { White, Grey, Black };
    std::vector<int> colour(labels_.size(), White);
    std::vector<int> stack;      // current DFS path
    std::vector<std::size_t> next;   // per path entry: next edge index

    for (int root = 0; root < size(); ++root) {
        if (colour[root] != White)
            continue;
        stack.assign(1, root);
        next.assign(1, 0);
        colour[root] = Grey;
        while (!stack.empty()) {
            const int node = stack.back();
            if (next.back() < edges_[node].size()) {
                const int to = edges_[node][next.back()++];
                if (colour[to] == Grey) {
                    const auto it =
                        std::find(stack.begin(), stack.end(), to);
                    return {it, stack.end()};
                }
                if (colour[to] == White) {
                    colour[to] = Grey;
                    stack.push_back(to);
                    next.push_back(0);
                }
            } else {
                colour[node] = Black;
                stack.pop_back();
                next.pop_back();
            }
        }
    }
    return {};
}

// --- InvariantChecker ---

InvariantChecker::InvariantChecker(const VerifyConfig &cfg) : cfg_(cfg) {}

void
InvariantChecker::attach(const Network &net)
{
#if !NOC_VERIFY_ENABLED
    (void)net;
    NOC_FATAL("invariant checker requested but the verify layer was "
              "compiled out (reconfigure with -DNOC_VERIFY=ON)");
#else
    net_ = &net;
    const SimConfig &cfg = net.config();
    const int num_vcs = cfg.numVcs;

    linkOut_.assign(static_cast<std::size_t>(net.numRouters()), {});
    for (RouterId r = 0; r < net.numRouters(); ++r) {
        const Router &router = net.router(r);
        linkOut_[r].resize(router.numOutputPorts());
        for (PortId p = 0; p < router.numOutputPorts(); ++p) {
            const OutputPort &op = router.outputPort(p);
            linkOut_[r][p].assign(
                static_cast<std::size_t>(op.numDrops() * num_vcs), 0);
        }
    }
    niOut_.assign(static_cast<std::size_t>(net.numNodes()),
                  std::vector<int>(static_cast<std::size_t>(num_vcs), 0));
    expressOut_.clear();
    inflight_.clear();
    injectedPackets_ = 0;
    deliveredPackets_ = 0;
    lastDeadlockProbe_ = 0;
#endif
}

bool
InvariantChecker::expect(bool ok, Invariant kind, Cycle now,
                         RouterId router, const std::string &detail)
{
    ++checks_;
    if (!ok)
        fail(kind, now, router, detail);
    return ok;
}

void
InvariantChecker::fail(Invariant kind, Cycle now, RouterId router,
                       const std::string &detail)
{
    ++violationCount_;
    Violation v;
    v.kind = kind;
    v.cycle = now;
    v.router = router;
    v.detail = detail;
    if (cfg_.failFast)
        NOC_PANIC("invariant violation: " + v.describe());
    if (violations_.size() < cfg_.maxViolations)
        violations_.push_back(std::move(v));
}

int &
InvariantChecker::linkSlot(RouterId r, PortId out_port, int drop, VcId vc)
{
    const int num_vcs = net_->config().numVcs;
    return linkOut_[r][out_port][static_cast<std::size_t>(
        drop * num_vcs + vc)];
}

void
InvariantChecker::onPacketInjected(const PacketDesc &packet, Cycle now)
{
    const auto lock = maybeLock();
    ++injectedPackets_;
    if (on(Invariant::Conserve)) {
        expect(inflight_.count(packet.id) == 0, Invariant::Conserve, now,
               kInvalidRouter,
               "duplicate packet id " + std::to_string(packet.id));
        expect(packet.src >= 0 && packet.src < net_->numNodes() &&
                   packet.dst >= 0 && packet.dst < net_->numNodes() &&
                   packet.size >= 1,
               Invariant::Conserve, now, kInvalidRouter,
               "malformed packet " + std::to_string(packet.id) + " src " +
                   std::to_string(packet.src) + " dst " +
                   std::to_string(packet.dst) + " size " +
                   std::to_string(packet.size));
    }
    PacketState st;
    st.src = packet.src;
    st.dst = packet.dst;
    st.size = packet.size;
    st.created = packet.createTime;
    inflight_[packet.id] = st;
}

void
InvariantChecker::onFlitInjected(NodeId node, const Flit &flit, Cycle now)
{
    const auto lock = maybeLock();
    ++niOut_[node][flit.vc];
    if (on(Invariant::Credits)) {
        expect(niOut_[node][flit.vc] <= net_->config().bufferDepth,
               Invariant::Credits, now, kInvalidRouter,
               "NI " + std::to_string(node) + " vc " +
                   std::to_string(flit.vc) +
                   " injected past its credit window");
    }
    const auto it = inflight_.find(flit.packet);
    if (!expect(it != inflight_.end(), Invariant::Ordering, now,
                kInvalidRouter,
                "flit of unknown packet " + std::to_string(flit.packet) +
                    " injected at NI " + std::to_string(node)))
        return;
    PacketState &st = it->second;
    if (on(Invariant::Ordering)) {
        expect(flit.seq == st.injectedFlits, Invariant::Ordering, now,
               kInvalidRouter,
               "packet " + std::to_string(flit.packet) +
                   " injected flit seq " + std::to_string(flit.seq) +
                   " out of order (expected " +
                   std::to_string(st.injectedFlits) + ")");
        const bool head_ok = (flit.seq == 0) == isHead(flit.type);
        const bool tail_ok =
            (flit.seq + 1 == st.size) == isTail(flit.type);
        expect(head_ok && tail_ok, Invariant::Ordering, now, kInvalidRouter,
               "packet " + std::to_string(flit.packet) + " flit seq " +
                   std::to_string(flit.seq) + "/" +
                   std::to_string(st.size) + " has wrong framing type");
    }
    ++st.injectedFlits;
}

void
InvariantChecker::onFlitEjected(NodeId node, const Flit &flit, Cycle now)
{
    const auto lock = maybeLock();
    const auto it = inflight_.find(flit.packet);
    if (!expect(it != inflight_.end(), Invariant::Conserve, now,
                kInvalidRouter,
                "flit of unknown/finished packet " +
                    std::to_string(flit.packet) + " ejected at NI " +
                    std::to_string(node)))
        return;
    PacketState &st = it->second;
    if (on(Invariant::Ordering)) {
        expect(node == st.dst && flit.dst == st.dst && flit.src == st.src,
               Invariant::Ordering, now, kInvalidRouter,
               "packet " + std::to_string(flit.packet) + " (dst " +
                   std::to_string(st.dst) + ") delivered to NI " +
                   std::to_string(node));
        expect(flit.seq == st.ejectedFlits, Invariant::Ordering, now,
               kInvalidRouter,
               "packet " + std::to_string(flit.packet) +
                   " ejected flit seq " + std::to_string(flit.seq) +
                   " out of order (expected " +
                   std::to_string(st.ejectedFlits) + ")");
    }
    ++st.ejectedFlits;
    if (st.ejectedFlits == st.size) {
        if (on(Invariant::Conserve)) {
            expect(st.injectedFlits == st.size, Invariant::Conserve, now,
                   kInvalidRouter,
                   "packet " + std::to_string(flit.packet) +
                       " completed with " +
                       std::to_string(st.injectedFlits) + "/" +
                       std::to_string(st.size) + " flits injected");
        }
        inflight_.erase(it);
        ++deliveredPackets_;
    }
}

void
InvariantChecker::onCreditTaken(RouterId r, PortId out_port, int drop,
                                VcId vc, bool express, Cycle now)
{
    const auto lock = maybeLock();
    int &slot = express ? expressOut_[{r, out_port, vc}]
                        : linkSlot(r, out_port, drop, vc);
    ++slot;
    if (on(Invariant::Credits)) {
        expect(slot <= net_->config().bufferDepth, Invariant::Credits, now,
               r,
               "out " + std::to_string(out_port) + " drop " +
                   std::to_string(drop) + " vc " + std::to_string(vc) +
                   (express ? " (express)" : "") + ": " +
                   std::to_string(slot) +
                   " flits outstanding exceed the buffer depth");
    }
}

void
InvariantChecker::onCreditReturned(RouterId r, PortId out_port, int drop,
                                   VcId vc, bool express, Cycle now)
{
    const auto lock = maybeLock();
    int &slot = express ? expressOut_[{r, out_port, vc}]
                        : linkSlot(r, out_port, drop, vc);
    --slot;
    if (on(Invariant::Credits)) {
        expect(slot >= 0, Invariant::Credits, now, r,
               "out " + std::to_string(out_port) + " drop " +
                   std::to_string(drop) + " vc " + std::to_string(vc) +
                   (express ? " (express)" : "") +
                   ": more credits returned than flits sent");
    }
}

void
InvariantChecker::onNiCredit(NodeId node, VcId vc, Cycle now)
{
    const auto lock = maybeLock();
    --niOut_[node][vc];
    if (on(Invariant::Credits)) {
        expect(niOut_[node][vc] >= 0, Invariant::Credits, now,
               kInvalidRouter,
               "NI " + std::to_string(node) + " vc " + std::to_string(vc) +
                   ": more credits returned than flits injected");
    }
}

void
InvariantChecker::onSaGrant(RouterId r, PortId in_port, VcId in_vc,
                            const RouteDecision &route, Cycle now)
{
    if (!on(Invariant::Circuits))
        return;
    const auto lock = maybeLock();
    const SimConfig &cfg = net_->config();
    const bool has_pc = cfg.scheme == Scheme::Pseudo ||
        cfg.scheme == Scheme::PseudoS || cfg.scheme == Scheme::PseudoB ||
        cfg.scheme == Scheme::PseudoSB;
    if (!has_pc)
        return;
    const Router &router = net_->router(r);
    const PseudoCircuitUnit &pc = router.pcUnit();
    const PseudoCircuitUnit::Register &reg = pc.at(in_port);
    expect(reg.valid && reg.inVc == in_vc && reg.route == route,
           Invariant::Circuits, now, r,
           "SA grant in " + std::to_string(in_port) + " vc " +
               std::to_string(in_vc) + " -> out " +
               std::to_string(route.outPort) +
               " did not establish the pseudo-circuit");
    for (PortId other = 0; other < router.numInputPorts(); ++other) {
        if (other == in_port)
            continue;
        const PseudoCircuitUnit::Register &o = pc.at(other);
        expect(!(o.valid && o.route.outPort == route.outPort),
               Invariant::Circuits, now, r,
               "conflicting circuit at in " + std::to_string(other) +
                   " survived the SA grant towards out " +
                   std::to_string(route.outPort));
    }
}

void
InvariantChecker::onPcReuse(RouterId r, PortId in_port, VcId in_vc,
                            const RouteDecision &used, const Flit &flit,
                            bool via_latch, Cycle now)
{
    if (!on(Invariant::Circuits))
        return;
    const auto lock = maybeLock();
    const PseudoCircuitUnit::Register &reg =
        net_->router(r).pcUnit().at(in_port);
    const char *path = via_latch ? "buffer bypass" : "SA bypass";
    expect(reg.valid && reg.inVc == in_vc, Invariant::Circuits, now, r,
           std::string(path) + " at in " + std::to_string(in_port) +
               " vc " + std::to_string(in_vc) +
               " without a matching valid circuit");
    expect(reg.route == used, Invariant::Circuits, now, r,
           std::string(path) + " at in " + std::to_string(in_port) +
               " used a route different from the circuit register");
    expect(flit.route == used, Invariant::Circuits, now, r,
           std::string(path) + " at in " + std::to_string(in_port) +
               " sent a flit towards out " + std::to_string(used.outPort) +
               " but the flit wanted out " +
               std::to_string(flit.route.outPort) +
               " (stale circuit misdelivery)");
}

void
InvariantChecker::onCycleEnd(Cycle now)
{
    const auto lock = maybeLock();
    if (cfg_.scanEvery > 0 && now % cfg_.scanEvery == 0) {
        if (on(Invariant::Credits) || on(Invariant::VcState) ||
            on(Invariant::Circuits))
            scanRouterState(now);
        if (on(Invariant::Conserve))
            scanConservation(now);
    }
    // Fault waiver: a stall window (or a dead link, until = forever)
    // legitimately halts progress; give deadlockAfter slack past it.
    const bool progress_waived =
        now < progressWaivedUntil_ ||
        now - progressWaivedUntil_ < cfg_.deadlockAfter;
    if (on(Invariant::Deadlock) && !progress_waived && !net_->idle() &&
        net_->cyclesSinceProgress() >= cfg_.deadlockAfter &&
        now >= lastDeadlockProbe_ + cfg_.deadlockAfter) {
        lastDeadlockProbe_ = now;
        probeDeadlock(now);
    }
}

void
InvariantChecker::waiveLink(RouterId r, PortId out_port, int drop)
{
    const std::tuple<RouterId, PortId, int> key{r, out_port, drop};
    for (const auto &w : waivedLinks_) {
        if (w == key)
            return;
    }
    waivedLinks_.push_back(key);
}

void
InvariantChecker::waiveProgressUntil(Cycle until)
{
    progressWaivedUntil_ = std::max(progressWaivedUntil_, until);
}

void
InvariantChecker::scanRouterState(Cycle now)
{
    const SimConfig &cfg = net_->config();
    const int num_vcs = cfg.numVcs;
    const int depth = cfg.bufferDepth;
    const bool has_pc = cfg.scheme == Scheme::Pseudo ||
        cfg.scheme == Scheme::PseudoS || cfg.scheme == Scheme::PseudoB ||
        cfg.scheme == Scheme::PseudoSB;

    for (RouterId r = 0; r < net_->numRouters(); ++r) {
        const Router &router = net_->router(r);

        // Output side: credit conservation + ownership back-references.
        for (PortId p = 0; p < router.numOutputPorts(); ++p) {
            const OutputPort &op = router.outputPort(p);
            if (!op.connected())
                continue;
            for (int d = 0; d < op.numDrops(); ++d) {
                for (VcId v = 0; v < num_vcs; ++v) {
                    const OutputVcState &s = op.vc(d, v);
                    const int out = linkOut_[r][p][static_cast<std::size_t>(
                        d * num_vcs + v)];
                    if (on(Invariant::Credits)) {
                        expect(s.credits >= 0 && s.credits <= depth &&
                                   out >= 0 && out <= depth &&
                                   s.credits == depth - out,
                               Invariant::Credits, now, r,
                               "out " + std::to_string(p) + " drop " +
                                   std::to_string(d) + " vc " +
                                   std::to_string(v) + ": " +
                                   std::to_string(s.credits) +
                                   " credits with " + std::to_string(out) +
                                   " flits outstanding (depth " +
                                   std::to_string(depth) + ")");
                    }
                    if (on(Invariant::VcState) && s.owned) {
                        bool ok = s.ownerPort >= 0 &&
                            s.ownerPort < router.numInputPorts() &&
                            s.ownerVc >= 0 && s.ownerVc < num_vcs;
                        if (ok) {
                            const InputVc &ivc =
                                router.inputVc(s.ownerPort, s.ownerVc);
                            ok = ivc.state() == InputVc::State::Active &&
                                !ivc.outVcExpress() && ivc.outVc() == v &&
                                ivc.route().outPort == p &&
                                ivc.route().drop == d;
                        }
                        expect(ok, Invariant::VcState, now, r,
                               "out " + std::to_string(p) + " drop " +
                                   std::to_string(d) + " vc " +
                                   std::to_string(v) +
                                   " owned without a matching active "
                                   "input VC");
                    }
                }
            }
            if (op.hasExpress() && cfg.scheme == Scheme::Evc) {
                const VcId base = num_vcs - cfg.evcNumExpressVcs;
                for (VcId v = base; v < num_vcs; ++v) {
                    const OutputVcState &s = op.expressVc(v);
                    const auto it = expressOut_.find({r, p, v});
                    const int out =
                        it == expressOut_.end() ? 0 : it->second;
                    if (on(Invariant::Credits)) {
                        expect(s.credits == depth - out,
                               Invariant::Credits, now, r,
                               "out " + std::to_string(p) +
                                   " express vc " + std::to_string(v) +
                                   ": " + std::to_string(s.credits) +
                                   " credits with " + std::to_string(out) +
                                   " flits outstanding");
                    }
                    if (on(Invariant::VcState) && s.owned) {
                        bool ok = s.ownerPort >= 0 &&
                            s.ownerPort < router.numInputPorts() &&
                            s.ownerVc >= 0 && s.ownerVc < num_vcs;
                        if (ok) {
                            const InputVc &ivc =
                                router.inputVc(s.ownerPort, s.ownerVc);
                            ok = ivc.state() == InputVc::State::Active &&
                                ivc.outVcExpress() && ivc.outVc() == v &&
                                ivc.route().outPort == p;
                        }
                        expect(ok, Invariant::VcState, now, r,
                               "out " + std::to_string(p) +
                                   " express vc " + std::to_string(v) +
                                   " owned without a matching active "
                                   "input VC");
                    }
                }
            }
        }

        // Input side: state-machine legality + forward ownership.
        if (on(Invariant::VcState)) {
            for (PortId p = 0; p < router.numInputPorts(); ++p) {
                for (VcId v = 0; v < num_vcs; ++v) {
                    const InputVc &vc = router.inputVc(p, v);
                    const std::string where =
                        "in " + std::to_string(p) + " vc " +
                        std::to_string(v);
                    expect(vc.occupancy() <=
                               static_cast<std::size_t>(depth),
                           Invariant::VcState, now, r,
                           where + " holds " +
                               std::to_string(vc.occupancy()) +
                               " flits, buffer depth is " +
                               std::to_string(depth));
                    switch (vc.state()) {
                      case InputVc::State::Idle:
                        expect(vc.empty(), Invariant::VcState, now, r,
                               where + " idle with " +
                                   std::to_string(vc.occupancy()) +
                                   " buffered flits");
                        break;
                      case InputVc::State::WaitingVa:
                        expect(!vc.empty() &&
                                   isHead(vc.front().flit.type) &&
                                   vc.front().flit.route == vc.route(),
                               Invariant::VcState, now, r,
                               where + " waiting for VA without a "
                                       "matching head at the front");
                        break;
                      case InputVc::State::Active: {
                        bool ok = vc.outVc() >= 0 && vc.outVc() < num_vcs &&
                            vc.route().outPort >= 0 &&
                            vc.route().outPort < router.numOutputPorts();
                        if (ok && !vc.outVcExpress()) {
                            const OutputPort &op =
                                router.outputPort(vc.route().outPort);
                            ok = op.connected() &&
                                vc.route().drop < op.numDrops();
                            if (ok) {
                                const OutputVcState &s =
                                    op.vc(vc.route().drop, vc.outVc());
                                ok = s.owned && s.ownerPort == p &&
                                    s.ownerVc == v;
                            }
                        }
                        expect(ok, Invariant::VcState, now, r,
                               where + " active without owning its "
                                       "output VC");
                        break;
                      }
                    }
                }
            }
        }

        // Pseudo-circuit registers.
        if (on(Invariant::Circuits) && has_pc) {
            const PseudoCircuitUnit &pc = router.pcUnit();
            std::vector<int> holders(
                static_cast<std::size_t>(router.numOutputPorts()),
                kInvalidPort);
            for (PortId in = 0; in < router.numInputPorts(); ++in) {
                const PseudoCircuitUnit::Register &reg = pc.at(in);
                if (!reg.valid)
                    continue;
                const bool route_ok = reg.inVc >= 0 &&
                    reg.inVc < num_vcs && reg.route.outPort >= 0 &&
                    reg.route.outPort < router.numOutputPorts() &&
                    router.outputPort(reg.route.outPort).connected() &&
                    reg.route.drop <
                        router.outputPort(reg.route.outPort).numDrops();
                expect(route_ok, Invariant::Circuits, now, r,
                       "circuit at in " + std::to_string(in) +
                           " references an invalid route");
                if (!route_ok)
                    continue;
                const PortId out = reg.route.outPort;
                expect(holders[out] == kInvalidPort, Invariant::Circuits,
                       now, r,
                       "circuits at in " + std::to_string(holders[out]) +
                           " and in " + std::to_string(in) +
                           " both drive out " + std::to_string(out));
                holders[out] = in;

                // §3.C condition 2: a circuit that is not actively
                // streaming a packet may not outlive the last credit of
                // its drop (creditTerminations runs every cycle).
                const InputVc &ivc = router.inputVc(in, reg.inVc);
                const bool streaming =
                    ivc.state() == InputVc::State::Active &&
                    ivc.route() == reg.route && !ivc.outVcExpress();
                const OutputPort &op = router.outputPort(out);
                expect(streaming ||
                           op.anyCredit(reg.route.drop, 0, num_vcs),
                       Invariant::Circuits, now, r,
                       "idle circuit at in " + std::to_string(in) +
                           " -> out " + std::to_string(out) +
                           " survived with zero downstream credits");
            }
        }
    }

    // NI credit windows.
    if (on(Invariant::Credits)) {
        for (NodeId n = 0; n < net_->numNodes(); ++n) {
            const NetworkInterface &ni = net_->ni(n);
            for (VcId v = 0; v < num_vcs; ++v) {
                expect(ni.credits(v) == depth - niOut_[n][v],
                       Invariant::Credits, now, kInvalidRouter,
                       "NI " + std::to_string(n) + " vc " +
                           std::to_string(v) + ": " +
                           std::to_string(ni.credits(v)) +
                           " credits with " + std::to_string(niOut_[n][v]) +
                           " flits outstanding");
            }
        }
    }
}

void
InvariantChecker::scanConservation(Cycle now)
{
    expect(inflight_.size() == net_->packetsOutstanding(),
           Invariant::Conserve, now, kInvalidRouter,
           "checker tracks " + std::to_string(inflight_.size()) +
               " packets in flight, network reports " +
               std::to_string(net_->packetsOutstanding()));
}

void
InvariantChecker::probeDeadlock(Cycle now)
{
    const SimConfig &cfg = net_->config();
    const int num_vcs = cfg.numVcs;
    const Topology &topo = net_->topology();

    // Pass 1: every Active/WaitingVa VC that is credit-blocked becomes
    // a node. (The probe only runs after deadlockAfter cycles with zero
    // flit movement anywhere, so anything holding flits is blocked on
    // *something*; nodes keep only the credit-blocked ones, which are
    // the candidates for a circular wait.)
    WaitForGraph wfg;
    std::map<std::tuple<RouterId, PortId, VcId>, int> nodeOf;
    const bool evc = cfg.scheme == Scheme::Evc;

    for (RouterId r = 0; r < net_->numRouters(); ++r) {
        const Router &router = net_->router(r);
        for (PortId p = 0; p < router.numInputPorts(); ++p) {
            for (VcId v = 0; v < num_vcs; ++v) {
                const InputVc &vc = router.inputVc(p, v);
                if (vc.empty())
                    continue;
                bool blocked = false;
                std::string why;
                if (vc.state() == InputVc::State::Active &&
                    !vc.outVcExpress()) {
                    const RouteDecision &rt = vc.route();
                    const OutputPort &op = router.outputPort(rt.outPort);
                    if (op.vc(rt.drop, vc.outVc()).credits <= 0) {
                        blocked = true;
                        why = "active->out " + std::to_string(rt.outPort) +
                            " vc " + std::to_string(vc.outVc()) +
                            " credits=0";
                    }
                } else if (vc.state() == InputVc::State::WaitingVa &&
                           !evc) {
                    const Flit &head = vc.front().flit;
                    const RouteDecision &rt = vc.route();
                    const OutputPort &op = router.outputPort(rt.outPort);
                    const auto [base, count] = net_->routing().vcRangeAt(
                        r, head.src, head.dst, head.cls, num_vcs);
                    if (!op.anyFreeCreditedVc(rt.drop, base, count)) {
                        blocked = true;
                        why = "va->out " + std::to_string(rt.outPort) +
                            " no free credited vc in [" +
                            std::to_string(base) + "," +
                            std::to_string(base + count) + ")";
                    }
                }
                if (blocked) {
                    nodeOf[{r, p, v}] = wfg.addNode(
                        "r" + std::to_string(r) + " in" +
                        std::to_string(p) + " vc" + std::to_string(v) +
                        " (" + why + ")");
                }
            }
        }
    }

    // Pass 2: wait edges between blocked VCs — an Active VC waits on
    // the downstream buffer its output VC maps to; a VA-blocked head
    // waits on every VC of its range at the downstream input port.
    for (const auto &[key, node] : nodeOf) {
        const auto [r, p, v] = key;
        const Router &router = net_->router(r);
        const InputVc &vc = router.inputVc(p, v);
        const RouteDecision &rt = vc.route();
        const OutputChannel &chan = topo.output(r, rt.outPort);
        if (chan.isTerminal())
            continue;   // NIs always consume; no wait edge
        const Drop &drop = chan.drops[static_cast<std::size_t>(rt.drop)];
        if (vc.state() == InputVc::State::Active) {
            const auto it = nodeOf.find({drop.router, drop.inPort,
                                         vc.outVc()});
            if (it != nodeOf.end())
                wfg.addEdge(node, it->second);
        } else {
            const Flit &head = vc.front().flit;
            const auto [base, count] = net_->routing().vcRangeAt(
                r, head.src, head.dst, head.cls, num_vcs);
            for (VcId w = base; w < base + count; ++w) {
                const auto it = nodeOf.find({drop.router, drop.inPort, w});
                if (it != nodeOf.end())
                    wfg.addEdge(node, it->second);
            }
        }
    }

    const std::vector<int> cycle = wfg.findCycle();
    if (!cycle.empty()) {
        std::ostringstream os;
        os << "deadlock: circular wait of " << cycle.size()
           << " VCs after "
           << net_->cyclesSinceProgress() << " stalled cycles: ";
        for (std::size_t i = 0; i < cycle.size(); ++i) {
            if (i > 0)
                os << " -> ";
            os << wfg.label(cycle[i]);
        }
        os << " -> " << wfg.label(cycle[0]);
        fail(Invariant::Deadlock, now, kInvalidRouter, os.str());
        ++checks_;
        return;
    }

    std::ostringstream os;
    os << "no forward progress for " << net_->cyclesSinceProgress()
       << " cycles without a wait cycle (possible credit loss): "
       << net_->describeStall();
    if (wfg.size() > 0) {
        os << "; blocked:";
        const int shown = std::min(wfg.size(), 8);
        for (int i = 0; i < shown; ++i)
            os << " [" << wfg.label(i) << "]";
        if (wfg.size() > shown)
            os << " (+" << wfg.size() - shown << " more)";
    }
    fail(Invariant::Deadlock, now, kInvalidRouter, os.str());
    ++checks_;
}

void
InvariantChecker::checkDrained(Cycle now)
{
    const SimConfig &cfg = net_->config();
    const int num_vcs = cfg.numVcs;
    const int depth = cfg.bufferDepth;

    if (on(Invariant::Conserve)) {
        expect(inflight_.empty(), Invariant::Conserve, now, kInvalidRouter,
               std::to_string(inflight_.size()) +
                   " packets never completed (injected " +
                   std::to_string(injectedPackets_) + ", delivered " +
                   std::to_string(deliveredPackets_) + ")");
        int shown = 0;
        for (const auto &[id, st] : inflight_) {
            if (++shown > 4)
                break;
            fail(Invariant::Conserve, now, kInvalidRouter,
                 "lost packet " + std::to_string(id) + " src " +
                     std::to_string(st.src) + " dst " +
                     std::to_string(st.dst) + ": " +
                     std::to_string(st.ejectedFlits) + "/" +
                     std::to_string(st.size) + " flits ejected, created " +
                     "cycle " + std::to_string(st.created));
        }
        expect(injectedPackets_ == deliveredPackets_ + inflight_.size(),
               Invariant::Conserve, now, kInvalidRouter,
               "packet conservation broke: injected " +
                   std::to_string(injectedPackets_) + " != delivered " +
                   std::to_string(deliveredPackets_) + " + in-flight " +
                   std::to_string(inflight_.size()));
    }

    if (on(Invariant::Credits)) {
        const auto link_waived = [this](RouterId r, PortId p, int d) {
            const std::tuple<RouterId, PortId, int> key{r, p, d};
            for (const auto &w : waivedLinks_) {
                if (w == key)
                    return true;
            }
            return false;
        };
        for (RouterId r = 0; r < net_->numRouters(); ++r) {
            const Router &router = net_->router(r);
            for (PortId p = 0; p < router.numOutputPorts(); ++p) {
                const OutputPort &op = router.outputPort(p);
                if (!op.connected())
                    continue;
                for (int d = 0; d < op.numDrops(); ++d) {
                    // Dead link: its dropped flits never return their
                    // credits; the leak is expected and waived by name.
                    if (link_waived(r, p, d))
                        continue;
                    for (VcId v = 0; v < num_vcs; ++v) {
                        const int out = linkOut_[r][p][
                            static_cast<std::size_t>(d * num_vcs + v)];
                        expect(out == 0 && op.vc(d, v).credits == depth,
                               Invariant::Credits, now, r,
                               "drained out " + std::to_string(p) +
                                   " drop " + std::to_string(d) + " vc " +
                                   std::to_string(v) + " leaked credits (" +
                                   std::to_string(op.vc(d, v).credits) +
                                   "/" + std::to_string(depth) +
                                   " home, ledger " + std::to_string(out) +
                                   ")");
                    }
                }
            }
        }
        for (const auto &[key, out] : expressOut_) {
            const auto [r, p, v] = key;
            const OutputVcState &s =
                net_->router(r).outputPort(p).expressVc(v);
            expect(out == 0 && s.credits == depth, Invariant::Credits, now,
                   r,
                   "drained out " + std::to_string(p) + " express vc " +
                       std::to_string(v) + " leaked credits (" +
                       std::to_string(s.credits) + "/" +
                       std::to_string(depth) + " home, ledger " +
                       std::to_string(out) + ")");
        }
        for (NodeId n = 0; n < net_->numNodes(); ++n) {
            const NetworkInterface &ni = net_->ni(n);
            for (VcId v = 0; v < num_vcs; ++v) {
                expect(niOut_[n][v] == 0 && ni.credits(v) == depth,
                       Invariant::Credits, now, kInvalidRouter,
                       "drained NI " + std::to_string(n) + " vc " +
                           std::to_string(v) + " leaked credits (" +
                           std::to_string(ni.credits(v)) + "/" +
                           std::to_string(depth) + " home, ledger " +
                           std::to_string(niOut_[n][v]) + ")");
            }
        }
    }

    if (on(Invariant::VcState)) {
        for (RouterId r = 0; r < net_->numRouters(); ++r) {
            const Router &router = net_->router(r);
            for (PortId p = 0; p < router.numInputPorts(); ++p) {
                for (VcId v = 0; v < num_vcs; ++v) {
                    const InputVc &vc = router.inputVc(p, v);
                    expect(vc.state() == InputVc::State::Idle &&
                               vc.empty(),
                           Invariant::VcState, now, r,
                           "drained in " + std::to_string(p) + " vc " +
                               std::to_string(v) + " still busy (" +
                               std::to_string(vc.occupancy()) +
                               " flits buffered)");
                }
            }
            for (PortId p = 0; p < router.numOutputPorts(); ++p) {
                const OutputPort &op = router.outputPort(p);
                if (!op.connected())
                    continue;
                for (int d = 0; d < op.numDrops(); ++d) {
                    for (VcId v = 0; v < num_vcs; ++v) {
                        expect(!op.vc(d, v).owned, Invariant::VcState,
                               now, r,
                               "drained out " + std::to_string(p) +
                                   " drop " + std::to_string(d) + " vc " +
                                   std::to_string(v) + " still owned");
                    }
                }
            }
        }
    }
}

std::string
InvariantChecker::report() const
{
    std::ostringstream os;
    for (const Violation &v : violations_)
        os << v.describe() << "\n";
    if (violationCount_ > violations_.size()) {
        os << "(" << violationCount_ - violations_.size()
           << " further violations not stored)\n";
    }
    return os.str();
}

} // namespace noc
