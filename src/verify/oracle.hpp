/**
 * @file
 * Differential oracles over whole simulation runs.
 *
 * The pseudo-circuit schemes are pure switching optimisations: for the
 * same seed and traffic they must deliver exactly the same packets as
 * the baseline router — only the timing may change — and at low load a
 * bypass scheme must never make an isolated packet slower. These
 * helpers run a configuration under the invariant checker, record the
 * full delivery multiset, and compare runs pairwise, so a refactor that
 * silently drops, duplicates or misdelivers packets fails a test
 * instead of shifting an average.
 */

#ifndef NOC_VERIFY_ORACLE_HPP
#define NOC_VERIFY_ORACLE_HPP

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "traffic/synthetic.hpp"
#include "verify/verify.hpp"

namespace noc {

/** One delivered packet, as the destination NI completed it. */
struct DeliveryRecord
{
    PacketId id = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::uint32_t size = 1;
    Cycle createTime = 0;
    Cycle ejectTime = 0;
    std::uint16_t hops = 0;
};

/** Everything one checked oracle run produces. */
struct OracleOutcome
{
    /// Every packet delivered during the run (warmup included), sorted
    /// by packet id — injection order, which is scheme-independent.
    std::vector<DeliveryRecord> deliveries;
    SimResult result;
    std::uint64_t checks = 0;
    std::uint64_t violations = 0;
    std::string report;   ///< violation report (empty when clean)
};

/**
 * Run `cfg` under synthetic traffic with the invariant checker
 * attached (when the verify layer is compiled in), recording every
 * delivery. The traffic seed derivation matches noctool exactly, so an
 * oracle failure is replayable from the command line.
 */
OracleOutcome runChecked(const SimConfig &cfg, SyntheticPattern pattern,
                         double load, int packet_size,
                         const SimWindows &windows = {},
                         const VerifyConfig &vcfg = {});

/**
 * Compare two delivery multisets on identity (id, src, dst, size) —
 * timing fields are expected to differ between schemes. Returns "" when
 * identical, otherwise a one-line description of the first difference.
 */
std::string compareDeliveries(const std::vector<DeliveryRecord> &a,
                              const std::vector<DeliveryRecord> &b);

/**
 * Total (create -> eject) latency of `count` isolated packets sent
 * src -> dst, one every `gap` cycles with nothing else in the network —
 * the paper's contention-free case. Used to assert that a bypass scheme
 * never worsens per-packet latency at low load. Returned in injection
 * order.
 */
std::vector<Cycle> isolatedLatencies(const SimConfig &cfg, NodeId src,
                                     NodeId dst, int count, Cycle gap,
                                     int packet_size,
                                     const VerifyConfig &vcfg = {});

} // namespace noc

#endif // NOC_VERIFY_ORACLE_HPP
