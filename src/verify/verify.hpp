/**
 * @file
 * Runtime invariant checker for the network core.
 *
 * The pseudo-circuit fast paths (SA bypass, speculation, buffer
 * bypassing) are stateful optimisations that can corrupt results
 * silently: a leaked credit or a stale circuit register still produces
 * plausible aggregate statistics. This layer shadows the flow-control
 * bookkeeping from the outside — an independent ledger fed by hot-path
 * hooks — and cross-checks it against the live router state:
 *
 *   Credits   credit conservation per (link, drop, VC): sender credits
 *             always equal bufferDepth minus flits in flight on the slot
 *   VcState   input-VC state machine legality and output-VC ownership
 *             (Active VC <-> owned output VC, both directions)
 *   Circuits  pseudo-circuit register consistency: at most one circuit
 *             per output, SA grants establish/terminate correctly, a
 *             non-streaming circuit never outlives its last downstream
 *             credit, reuse delivers over the route the flit wanted
 *   Ordering  intra-packet flit ordering and head/tail framing at
 *             injection and ejection, delivery to the right node
 *   Conserve  end-to-end packet conservation: injected = delivered +
 *             in flight, checked per cycle and exhaustively at drain
 *   Deadlock  wait-for-graph cycle search over credit-blocked VCs once
 *             the network makes no progress, with a diagnostic dump
 *
 * Gating mirrors the telemetry layer: configure with -DNOC_VERIFY=OFF
 * and every NOC_VCHK() in the hot paths compiles to nothing. When
 * compiled in, an unattached checker costs one null-pointer test per
 * hook site.
 */

#ifndef NOC_VERIFY_VERIFY_HPP
#define NOC_VERIFY_VERIFY_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "router/flit.hpp"
#include "routing/routing.hpp"

#if defined(NOC_VERIFY_DISABLED)
#define NOC_VERIFY_ENABLED 0
#else
#define NOC_VERIFY_ENABLED 1
#endif

/**
 * Hot-path hook: NOC_VCHK(checker, onCreditTaken(...)) calls the member
 * when a checker is attached, and compiles to nothing when the verify
 * layer is configured out — arguments are never evaluated.
 */
#if NOC_VERIFY_ENABLED
#define NOC_VCHK(checker, call)                                             \
    do {                                                                    \
        if (checker)                                                        \
            (checker)->call;                                                \
    } while (0)
#else
#define NOC_VCHK(checker, call)                                             \
    do {                                                                    \
    } while (0)
#endif

namespace noc {

class Network;

/** Invariant families, usable as a bitmask in VerifyConfig::mask. */
enum class Invariant : std::uint32_t {
    Credits = 1u << 0,
    VcState = 1u << 1,
    Circuits = 1u << 2,
    Ordering = 1u << 3,
    Conserve = 1u << 4,
    Deadlock = 1u << 5,
};

inline constexpr std::uint32_t kAllInvariants = 0x3f;

const char *toString(Invariant inv);

/**
 * Parse "all", "off", or a comma list of credits|state|pc|order|
 * conserve|deadlock into an invariant mask (fatal on unknown names).
 */
std::uint32_t verifyMaskFromSpec(const std::string &spec);

/** Checker knobs; defaults check everything every cycle. */
struct VerifyConfig
{
    /// Carried by job descriptions (e.g. SweepJob) to request a
    /// per-run checker; the checker itself ignores it.
    bool enabled = false;
    std::uint32_t mask = kAllInvariants;
    /// Full-state scan cadence in cycles (0 disables the scans; the
    /// event-driven ledger checks still run).
    Cycle scanEvery = 1;
    /// Cycles without network progress before the wait-for-graph
    /// deadlock probe runs (and re-runs, while the stall persists).
    Cycle deadlockAfter = 1500;
    /// Panic on the first violation instead of recording it.
    bool failFast = false;
    /// Stored-violation cap; the total count keeps running past it.
    std::size_t maxViolations = 64;
};

/** One detected invariant violation. */
struct Violation
{
    Invariant kind = Invariant::Credits;
    Cycle cycle = 0;
    RouterId router = kInvalidRouter;  ///< kInvalidRouter: network level
    std::string detail;

    /** "cycle 1234 router 5 [credits] <detail>" */
    std::string describe() const;
};

/**
 * A small directed graph of labelled wait dependencies with cycle
 * search; standalone so the deadlock detector is unit-testable.
 */
class WaitForGraph
{
  public:
    /** Add a node; returns its index. */
    int addNode(std::string label);
    void addEdge(int from, int to);

    int size() const { return static_cast<int>(labels_.size()); }
    const std::string &label(int node) const { return labels_[node]; }

    /**
     * Indices of the nodes on one directed cycle, in order (first node
     * repeated implicitly); empty when the graph is acyclic.
     */
    std::vector<int> findCycle() const;

  private:
    std::vector<std::string> labels_;
    std::vector<std::vector<int>> edges_;
};

class InvariantChecker
{
  public:
    explicit InvariantChecker(const VerifyConfig &cfg = {});

    /**
     * Bind to a network and size the shadow ledgers from its topology.
     * Called by Network::setVerifier(); the checker observes only — it
     * never mutates network state, so an attached checker cannot
     * perturb simulation results. Fatal when the verify layer was
     * compiled out (the hooks feeding the ledgers do not exist).
     */
    void attach(const Network &net);
    bool attached() const { return net_ != nullptr; }

    const VerifyConfig &config() const { return cfg_; }

    /**
     * Concurrent mode (sharded runs): hook bodies serialise on an
     * internal mutex so shard threads can feed the ledgers from
     * disjoint routers. The ledger updates are order-insensitive within
     * a cycle (counter arithmetic keyed by slot), so the interleaving
     * does not change what a scan observes at a window barrier. Off by
     * default — serial runs pay nothing. Network::beginSharded turns it
     * on, endSharded off.
     */
    void setConcurrent(bool on) { concurrent_ = on; }

    // --- hot-path hooks (call through NOC_VCHK) ---

    /** A packet was handed to its source NI. */
    void onPacketInjected(const PacketDesc &packet, Cycle now);
    /** The source NI emitted one flit onto its terminal link. */
    void onFlitInjected(NodeId node, const Flit &flit, Cycle now);
    /** A flit arrived at a destination NI. */
    void onFlitEjected(NodeId node, const Flit &flit, Cycle now);
    /** Router `r` consumed a downstream credit sending a flit. */
    void onCreditTaken(RouterId r, PortId out_port, int drop, VcId vc,
                       bool express, Cycle now);
    /** A credit returned to router `r` for one of its outputs. */
    void onCreditReturned(RouterId r, PortId out_port, int drop, VcId vc,
                          bool express, Cycle now);
    /** A credit returned to a source NI's terminal input port. */
    void onNiCredit(NodeId node, VcId vc, Cycle now);
    /** SA granted (in_port, in_vc) -> route; pseudo-circuit created. */
    void onSaGrant(RouterId r, PortId in_port, VcId in_vc,
                   const RouteDecision &route, Cycle now);
    /** A flit traversed via the standing pseudo-circuit at `in_port`. */
    void onPcReuse(RouterId r, PortId in_port, VcId in_vc,
                   const RouteDecision &used, const Flit &flit,
                   bool via_latch, Cycle now);
    /** End of the network cycle `now`: scans + deadlock probe. */
    void onCycleEnd(Cycle now);

    // --- fault waivers (installed by the FaultController) ---

    /**
     * Waive the credit ledger of one directed link slot set: a dead
     * link's dropped flits never return their credits, so the drained
     * audit skips every (drop, vc) slot of `out_port`'s `drop` at
     * router `r`. Per-cycle ledger checks for other links stay on.
     */
    void waiveLink(RouterId r, PortId out_port, int drop);

    /**
     * Suppress the forward-progress (deadlock) probe while now is
     * before `until` plus the configured deadlockAfter slack. Used for
     * stall windows (bounded) and dead links (kNeverCycle: packets
     * legitimately stop draining).
     */
    void waiveProgressUntil(Cycle until);

    /**
     * Exhaustive audit of the fully drained network: no packet in
     * flight, every ledger zero, every credit home, every input VC
     * idle and empty, no owned output VC. The caller must let
     * in-flight credits land first (the network is "idle" as soon as
     * the last flit ejects, while its credits are still on the wire).
     */
    void checkDrained(Cycle now);

    // --- results ---

    std::uint64_t checks() const { return checks_; }
    std::uint64_t violationCount() const { return violationCount_; }
    const std::vector<Violation> &violations() const { return violations_; }
    bool clean() const { return violationCount_ == 0; }

    /** Multi-line report of the stored violations (empty when clean). */
    std::string report() const;

  private:
    struct PacketState
    {
        NodeId src = kInvalidNode;
        NodeId dst = kInvalidNode;
        std::uint32_t size = 1;
        std::uint32_t injectedFlits = 0;
        std::uint32_t ejectedFlits = 0;
        Cycle created = 0;
    };

    bool on(Invariant inv) const
    {
        return (cfg_.mask & static_cast<std::uint32_t>(inv)) != 0;
    }

    /** Engaged lock in concurrent mode, a no-op otherwise. */
    std::unique_lock<std::mutex> maybeLock()
    {
        return concurrent_ ? std::unique_lock<std::mutex>(mu_)
                           : std::unique_lock<std::mutex>();
    }

    /** Count a check; record/panic on failure. Returns `ok`. */
    bool expect(bool ok, Invariant kind, Cycle now, RouterId router,
                const std::string &detail);
    void fail(Invariant kind, Cycle now, RouterId router,
              const std::string &detail);

    int &linkSlot(RouterId r, PortId out_port, int drop, VcId vc);

    void scanRouterState(Cycle now);
    void scanConservation(Cycle now);
    void probeDeadlock(Cycle now);

    VerifyConfig cfg_;
    const Network *net_ = nullptr;
    std::mutex mu_;              ///< guards ledgers in concurrent mode
    bool concurrent_ = false;

    // Shadow ledgers: flits sent minus credits returned, per slot.
    /// [router][outPort][drop * numVcs + vc]
    std::vector<std::vector<std::vector<int>>> linkOut_;
    /// EVC express slots, keyed (router, outPort, vc) — sparse.
    std::map<std::tuple<RouterId, PortId, VcId>, int> expressOut_;
    /// [node][vc]: flits the NI sent whose credit has not returned.
    std::vector<std::vector<int>> niOut_;

    std::unordered_map<PacketId, PacketState> inflight_;
    std::uint64_t injectedPackets_ = 0;
    std::uint64_t deliveredPackets_ = 0;

    Cycle lastDeadlockProbe_ = 0;

    /// Fault waivers: dead-link slot sets excluded from the drained
    /// credit audit, and the progress-probe suppression horizon.
    std::vector<std::tuple<RouterId, PortId, int>> waivedLinks_;
    Cycle progressWaivedUntil_ = 0;

    std::uint64_t checks_ = 0;
    std::uint64_t violationCount_ = 0;
    std::vector<Violation> violations_;
};

} // namespace noc

#endif // NOC_VERIFY_VERIFY_HPP
