#include "verify/model_oracle.hpp"

#include <algorithm>
#include <cmath>

#include "analytic/analytic_model.hpp"

namespace noc {

AccuracyReport
analyticAccuracyOracle(const std::vector<AccuracyPoint> &sample,
                       const Calibration &cal, const SimWindows &windows)
{
    AccuracyReport report;
    report.bound = cal.errorBound;
    report.points = sample;

    DetailedNetworkModel detailed;
    AnalyticNetworkModel analytic(cal);
    double errSum = 0.0;
    for (AccuracyPoint &p : report.points) {
        ModelRequest req;
        req.cfg = p.cfg;
        req.pattern = p.pattern;
        req.load = p.load;
        req.packetSize = p.packetSize;
        req.windows = windows;

        const ModelEstimate prediction = analytic.estimate(req);
        if (!prediction.ok || prediction.saturated) {
            p.skipped = true;
            continue;
        }
        const ModelEstimate truth = detailed.estimate(req);
        if (!truth.ok || truth.saturated || truth.netLatency <= 0.0) {
            p.skipped = true;
            continue;
        }
        p.detailedNet = truth.netLatency;
        p.analyticNet = prediction.netLatency;
        p.relError =
            std::abs(prediction.netLatency - truth.netLatency) /
            truth.netLatency;
        errSum += p.relError;
        ++report.scored;
        if (p.relError > report.maxError) {
            report.maxError = p.relError;
            report.worst = p.cfg.describe() + " load=" +
                           std::to_string(p.load) + " pattern=" +
                           toString(p.pattern);
        }
    }
    if (report.scored > 0)
        report.meanError = errSum / report.scored;
    report.pass = report.scored > 0 && report.maxError <= report.bound;
    return report;
}

std::vector<AccuracyPoint>
paperAccuracySample()
{
    // fig08/fig09 operating points below saturation: the paper platform
    // swept over all five schemes at three pre-saturation loads.
    std::vector<AccuracyPoint> sample;
    for (const Scheme scheme :
         {Scheme::Baseline, Scheme::Pseudo, Scheme::PseudoS,
          Scheme::PseudoB, Scheme::PseudoSB}) {
        for (const double load : {0.05, 0.10, 0.15}) {
            AccuracyPoint p;
            p.cfg.topology = TopologyKind::CMesh;
            p.cfg.meshWidth = 4;
            p.cfg.meshHeight = 4;
            p.cfg.concentration = 4;
            p.cfg.scheme = scheme;
            p.cfg.seed = 7;
            p.pattern = SyntheticPattern::UniformRandom;
            p.load = load;
            p.packetSize = 5;
            sample.push_back(p);
        }
    }
    return sample;
}

} // namespace noc
