#include "verify/oracle.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "common/log.hpp"

namespace noc {

namespace {

/** Wraps a source, recording every delivery the network reports. */
class RecordingSource : public TrafficSource
{
  public:
    RecordingSource(std::unique_ptr<TrafficSource> inner,
                    std::vector<DeliveryRecord> &out)
        : inner_(std::move(inner)), out_(out)
    {
    }

    void tick(Network &net, Cycle now, SimPhase phase) override
    {
        inner_->tick(net, now, phase);
    }

    void onPacketDelivered(const CompletedPacket &p, Network &net,
                           Cycle now) override
    {
        DeliveryRecord rec;
        rec.id = p.id;
        rec.src = p.src;
        rec.dst = p.dst;
        rec.size = p.size;
        rec.createTime = p.createTime;
        rec.ejectTime = p.ejectTime;
        rec.hops = p.hops;
        out_.push_back(rec);
        inner_->onPacketDelivered(p, net, now);
    }

    bool exhausted() const override { return inner_->exhausted(); }

    bool openLoop() const override { return inner_->openLoop(); }

  private:
    std::unique_ptr<TrafficSource> inner_;
    std::vector<DeliveryRecord> &out_;
};

/** `count` packets src -> dst, one every `gap` cycles, nothing else. */
class IsolatedFlow : public TrafficSource
{
  public:
    IsolatedFlow(NodeId src, NodeId dst, int count, Cycle gap, int size)
        : src_(src), dst_(dst), count_(count), gap_(gap), size_(size)
    {
    }

    void tick(Network &net, Cycle now, SimPhase phase) override
    {
        if (phase == SimPhase::Drain || sent_ >= count_ || now < nextAt_)
            return;
        PacketDesc packet;
        packet.id = nextPacketId();
        packet.src = src_;
        packet.dst = dst_;
        packet.size = static_cast<std::uint32_t>(size_);
        packet.createTime = now;
        packet.measured = true;
        net.injectPacket(packet);
        ++sent_;
        nextAt_ = now + gap_;
    }

    bool exhausted() const override { return sent_ >= count_; }

  private:
    const NodeId src_;
    const NodeId dst_;
    const int count_;
    const Cycle gap_;
    const int size_;
    int sent_ = 0;
    Cycle nextAt_ = 0;
};

} // namespace

OracleOutcome
runChecked(const SimConfig &cfg, SyntheticPattern pattern, double load,
           int packet_size, const SimWindows &windows,
           const VerifyConfig &vcfg)
{
    OracleOutcome out;
    // Seed derivation matches noctool's single-run path so a failing
    // oracle configuration replays from the command line verbatim.
    auto traffic = std::make_unique<SyntheticTraffic>(
        pattern, cfg.numNodes(), load, packet_size, cfg.seed * 77 + 5);
    Simulator sim(cfg, std::make_unique<RecordingSource>(
                           std::move(traffic), out.deliveries));
#if NOC_VERIFY_ENABLED
    InvariantChecker checker(vcfg);
    sim.setVerifier(&checker);
#else
    (void)vcfg;
#endif
    out.result = sim.run(windows);
#if NOC_VERIFY_ENABLED
    out.checks = checker.checks();
    out.violations = checker.violationCount();
    out.report = checker.report();
#endif
    std::sort(out.deliveries.begin(), out.deliveries.end(),
              [](const DeliveryRecord &a, const DeliveryRecord &b) {
                  return a.id < b.id;
              });
    return out;
}

std::string
compareDeliveries(const std::vector<DeliveryRecord> &a,
                  const std::vector<DeliveryRecord> &b)
{
    if (a.size() != b.size()) {
        std::ostringstream os;
        os << "delivery counts differ: " << a.size() << " vs " << b.size()
           << " packets";
        return os.str();
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        const DeliveryRecord &x = a[i];
        const DeliveryRecord &y = b[i];
        if (x.id != y.id || x.src != y.src || x.dst != y.dst ||
            x.size != y.size) {
            std::ostringstream os;
            os << "delivery " << i << " differs: packet " << x.id
               << " (src " << x.src << " dst " << x.dst << " size "
               << x.size << ") vs packet " << y.id << " (src " << y.src
               << " dst " << y.dst << " size " << y.size << ")";
            return os.str();
        }
    }
    return "";
}

std::vector<Cycle>
isolatedLatencies(const SimConfig &cfg, NodeId src, NodeId dst, int count,
                  Cycle gap, int packet_size, const VerifyConfig &vcfg)
{
    std::vector<DeliveryRecord> deliveries;
    Simulator sim(cfg, std::make_unique<RecordingSource>(
                           std::make_unique<IsolatedFlow>(
                               src, dst, count, gap, packet_size),
                           deliveries));
#if NOC_VERIFY_ENABLED
    InvariantChecker checker(vcfg);
    sim.setVerifier(&checker);
#else
    (void)vcfg;
#endif
    SimWindows windows;
    windows.warmup = 0;
    windows.measure = static_cast<Cycle>(count) * gap + 16;
    const SimResult result = sim.run(windows);
    NOC_ASSERT(result.drained, "isolated flow failed to drain");

    std::sort(deliveries.begin(), deliveries.end(),
              [](const DeliveryRecord &a, const DeliveryRecord &b) {
                  return a.id < b.id;
              });
    std::vector<Cycle> latencies;
    latencies.reserve(deliveries.size());
    for (const DeliveryRecord &d : deliveries)
        latencies.push_back(d.ejectTime - d.createTime);
    return latencies;
}

} // namespace noc
