/**
 * @file
 * Liveness oracle for degraded runs: an accounting-closure check over
 * the fault layer's degradation report.
 *
 * The guarantee under faults and churn is not "every packet arrives" —
 * it is *graceful degradation*: every offered packet is accounted for
 * exactly once as delivered, dropped (dead link), refused (unroutable),
 * or still in flight; and a run that claims to have drained holds
 * nothing. A violation means packets leaked out of the books — the
 * churn engine lost a deferred flit, a refusal double-counted, or a
 * teardown orphaned a packet — which is precisely the class of bug the
 * per-cycle invariant mask cannot see (it reasons about flits and
 * credits, not end-to-end packet fates).
 *
 * Unlike the InvariantChecker this is always compiled: it reads only
 * the final FaultReport, costs one pass over the flow table, and is
 * meant to be asserted by tests, benches, and the fuzzer after every
 * faulted/churned run. It is not wired into the Simulator — callers
 * decide when a run's accounting must close.
 */

#ifndef NOC_VERIFY_LIVENESS_HPP
#define NOC_VERIFY_LIVENESS_HPP

#include <string>

#include "fault/fault_controller.hpp"

namespace noc {

/** Outcome of a liveness audit; `message` names the first violation. */
struct LivenessVerdict
{
    bool ok = true;
    std::string message;

    explicit operator bool() const { return ok; }
};

/**
 * Audit a degradation report for accounting closure:
 *
 *   - per flow: delivered + dropped + unroutable <= offered, and
 *     inFlight is exactly the difference;
 *   - the flow table sums to the report totals for every disposition;
 *   - `drained` implies nothing is in flight (a drained network that
 *     still owes packets has lost them).
 *
 * Pass `drained` from SimResult::drained.
 */
LivenessVerdict checkLiveness(const FaultReport &report, bool drained);

} // namespace noc

#endif // NOC_VERIFY_LIVENESS_HPP
