#include "verify/liveness.hpp"

#include <sstream>

namespace noc {

namespace {

LivenessVerdict
fail(const std::ostringstream &os)
{
    LivenessVerdict v;
    v.ok = false;
    v.message = os.str();
    return v;
}

} // namespace

LivenessVerdict
checkLiveness(const FaultReport &report, bool drained)
{
    std::uint64_t offered = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t unroutable = 0;
    std::uint64_t in_flight = 0;

    for (const FaultReport::Flow &f : report.flows) {
        const std::uint64_t settled = f.delivered + f.dropped + f.unroutable;
        if (settled > f.offered) {
            std::ostringstream os;
            os << "liveness: flow " << f.src << "->" << f.dst
               << " settles more packets than were offered (" << settled
               << " > " << f.offered << ")";
            return fail(os);
        }
        if (f.inFlight != f.offered - settled) {
            std::ostringstream os;
            os << "liveness: flow " << f.src << "->" << f.dst
               << " in-flight count " << f.inFlight
               << " does not close the books (offered " << f.offered
               << ", settled " << settled << ")";
            return fail(os);
        }
        offered += f.offered;
        delivered += f.delivered;
        dropped += f.dropped;
        unroutable += f.unroutable;
        in_flight += f.inFlight;
    }

    const struct
    {
        const char *name;
        std::uint64_t fromFlows;
        std::uint64_t total;
    } sums[] = {
        {"offered", offered, report.packetsOffered},
        {"delivered", delivered, report.packetsDelivered},
        {"dropped", dropped, report.packetsDropped},
        {"unroutable", unroutable, report.packetsUnroutable},
        {"in-flight", in_flight, report.packetsInFlight},
    };
    for (const auto &s : sums) {
        if (s.fromFlows != s.total) {
            std::ostringstream os;
            os << "liveness: flow table sums to " << s.fromFlows << " "
               << s.name << " packets but the report totals " << s.total;
            return fail(os);
        }
    }

    if (drained && report.packetsInFlight != 0) {
        std::ostringstream os;
        os << "liveness: run drained with " << report.packetsInFlight
           << " packets still unaccounted (lost in the fabric)";
        return fail(os);
    }

    return LivenessVerdict{};
}

} // namespace noc
