/**
 * @file
 * Analytic-vs-detailed accuracy oracle.
 *
 * The analytical model ships with a contract: on pre-saturation points
 * of the calibrated configuration family, its mean net latency is
 * within Calibration::errorBound of the cycle-accurate simulator. This
 * oracle *enforces* that contract the same way the PR 4 oracles
 * enforce delivery equivalence — run both backends over a sample of
 * configurations, compare, and fail loudly with the offending point.
 * It backs the AnalyticAccuracy ctest suite and the CI
 * `analytic-accuracy` job.
 */

#ifndef NOC_VERIFY_MODEL_ORACLE_HPP
#define NOC_VERIFY_MODEL_ORACLE_HPP

#include <string>
#include <vector>

#include "analytic/calibration.hpp"
#include "analytic/network_model.hpp"

namespace noc {

/** One compared point of the accuracy sample. */
struct AccuracyPoint
{
    SimConfig cfg;
    SyntheticPattern pattern = SyntheticPattern::UniformRandom;
    double load = 0.0;
    int packetSize = 5;

    bool skipped = false;       ///< saturated (either side) — not scored
    double detailedNet = 0.0;   ///< measured mean net latency
    double analyticNet = 0.0;   ///< predicted mean net latency
    double relError = 0.0;      ///< |analytic - detailed| / detailed
};

/** The oracle's verdict over one sample. */
struct AccuracyReport
{
    std::vector<AccuracyPoint> points;
    int scored = 0;             ///< points that entered the error stats
    double meanError = 0.0;
    double maxError = 0.0;
    double bound = 0.0;         ///< the enforced Calibration::errorBound
    bool pass = false;          ///< every scored point within bound
    std::string worst;          ///< describe() of the worst point
};

/**
 * Run `cfg`-family points under both backends and score the analytic
 * error. Points saturated under either backend are recorded but not
 * scored — the contract is pre-saturation only. Pass requires every
 * scored relative error <= cal.errorBound and at least one scored
 * point (an all-saturated sample cannot claim accuracy).
 */
AccuracyReport analyticAccuracyOracle(const std::vector<AccuracyPoint> &sample,
                                      const Calibration &cal,
                                      const SimWindows &windows = {});

/**
 * The fixed sample CI and ctest use: the paper platform (4x4 CMesh,
 * XY, 5-flit packets) under uniform random at pre-saturation loads,
 * all five pseudo-circuit schemes — the fig08/fig09 operating points.
 */
std::vector<AccuracyPoint> paperAccuracySample();

} // namespace noc

#endif // NOC_VERIFY_MODEL_ORACLE_HPP
