/**
 * @file
 * Parallel sweep engine: run many independent simulations on a
 * std::thread pool and collect their results in submission order.
 *
 * Every figure harness is a batch of fully independent Simulator runs,
 * so the experiment layer parallelises trivially — provided each job is
 * self-contained. A SweepJob therefore carries its own SimConfig, its
 * own SimWindows and a *factory* for its traffic source; the factory is
 * invoked inside the worker thread so no TrafficSource (and no RNG
 * state) is ever shared between jobs. As long as the factory is a pure
 * function of the job (seeds derived from the job's config or captured
 * constants — never from a shared mutable RNG), the results are
 * bit-identical whatever the thread count: `--jobs 8` output equals
 * `--jobs 1` output byte for byte.
 *
 * Failure isolation: a job whose factory or simulation throws yields a
 * SweepOutcome with ok=false and the exception text; sibling jobs are
 * unaffected and ordering is preserved.
 */

#ifndef NOC_SIM_SWEEP_HPP
#define NOC_SIM_SWEEP_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result_sink.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "traffic/synthetic.hpp"

namespace noc {

/** Builds one job's traffic source, inside the worker thread. */
using TrafficFactory =
    std::function<std::unique_ptr<TrafficSource>(const SimConfig &)>;

/**
 * Sidecar description of a job's workload for the model layer
 * (src/analytic/). The TrafficFactory is opaque, so jobs that want to
 * be analytically modellable (synthetic workloads only) also carry the
 * pattern/load/size triple the factory was built from. Invalid (the
 * default) means "detailed fidelity only" — e.g. trace-driven jobs.
 */
struct AnalyticSpec
{
    bool valid = false;
    SyntheticPattern pattern = SyntheticPattern::UniformRandom;
    double load = 0.0;        ///< offered flits/node/cycle
    int packetSize = 5;
};

/** One independent simulation in a sweep. */
struct SweepJob
{
    std::string label;        ///< carried into the outcome / result sinks
    SimConfig cfg;
    TrafficFactory makeSource;
    SimWindows windows;
    /// With telemetry.enabled, the worker attaches a per-job
    /// RingBufferCollector and the outcome carries the trace. Each job
    /// owns its collector, so recording stays lock-free; merging
    /// happens after the join, in submission order.
    TelemetryConfig telemetry;
    /// With verify.enabled, the worker attaches a per-job
    /// InvariantChecker and the outcome carries its verdict. The
    /// checker only observes, so results stay byte-identical.
    VerifyConfig verify;
    /// Workload sidecar for model-driven sweeps (see AnalyticSpec).
    /// Ignored by SweepRunner itself — only runModelSweep reads it.
    AnalyticSpec analytic;
    /// With profile set, the worker stamps the outcome's result with a
    /// ProfileAnnotation (per-job wall/queue seconds) — the only result
    /// difference, so profile-off sweeps stay byte-identical. Fatal
    /// when the profiling layer was compiled out.
    bool profile = false;

    // --- resilience knobs (all off by default: one attempt, no limit) ---
    /// Wall-clock budget per attempt in milliseconds (0 = unlimited).
    /// An attempt past its deadline is cancelled cooperatively and
    /// counts as a failure (retried if attempts remain).
    std::int64_t deadlineMs = 0;
    /// Attempts per job (>= 1). Retries cover transient failures
    /// (deadline blown on a loaded machine); a deterministic throw
    /// fails every attempt and reports the last error.
    int maxAttempts = 1;
    /// Base pause before retry k is backoffMs * k (linear backoff).
    std::int64_t backoffMs = 0;
};

/** What one job produced (result is default-constructed when !ok). */
struct SweepOutcome
{
    std::string label;
    SimConfig cfg;
    SimResult result;
    bool ok = false;
    std::string error;        ///< exception text when !ok
    /// The job's collected events (null unless telemetry was enabled).
    std::shared_ptr<const TelemetryTrace> trace;
    /// Invariant-checker verdict (all zero/empty unless verify was on).
    std::uint64_t verifyChecks = 0;
    std::uint64_t verifyViolations = 0;
    std::string verifyReport;
    /// The run was cut short by the stop flag (SIGINT/SIGTERM) — not a
    /// job failure; a resumed sweep should re-run it.
    bool interrupted = false;
    /// Attempts consumed (0 only when the job never started).
    int attempts = 0;
};

/**
 * Resolve a thread count: `requested` if > 0, else the NOC_JOBS
 * environment variable, else std::thread::hardware_concurrency()
 * (minimum 1).
 */
int resolveJobCount(int requested = 0);

/** One job finished (delivered in completion order, serialized). */
struct SweepProgressEvent
{
    std::size_t completed = 0;  ///< jobs finished so far, this one included
    std::size_t total = 0;
    std::string label;          ///< the job that just finished
    bool ok = false;
    RunVerdict verdict = RunVerdict::None;
};

/**
 * Progress observer. Invoked under a runner-internal mutex, so the
 * callback never races with itself — but it runs on worker threads and
 * stalls job completion while it executes, so keep it cheap and never
 * touch stdout (results own stdout; progress belongs on stderr).
 */
using SweepProgressFn = std::function<void(const SweepProgressEvent &)>;

/**
 * Completion observer: fires once per job as it finishes (completion
 * order, with the job's submission index), serialized under the same
 * mutex as progress events. This is the checkpoint hook — a journal
 * appends the outcome here so a killed sweep can resume. Jobs skipped
 * by the stop flag never fire it.
 */
using SweepCompleteFn =
    std::function<void(std::size_t index, const SweepOutcome &outcome)>;

class SweepRunner
{
  public:
    /** @param jobs  worker threads; <= 0 means resolveJobCount(). */
    explicit SweepRunner(int jobs = 0);

    int jobs() const { return jobs_; }

    /** Install a progress observer for subsequent run() calls. */
    void onProgress(SweepProgressFn fn) { progress_ = std::move(fn); }

    /** Install a per-job completion observer (checkpointing hook). */
    void onJobComplete(SweepCompleteFn fn) { complete_ = std::move(fn); }

    /**
     * Install a caller-owned stop flag (nullptr detaches). Once it
     * turns true — typically from a SIGINT/SIGTERM handler — running
     * jobs cancel cooperatively and unstarted jobs are skipped; both
     * come back with interrupted=true and error "interrupted".
     */
    void setStopFlag(const std::atomic<bool> *stop) { stop_ = stop; }

    /**
     * Run every job and return outcomes in submission order. Jobs are
     * claimed work-stealing style but results land at their submission
     * index, so ordering (and with deterministic factories, content) is
     * independent of the thread count. With jobs() == 1 everything runs
     * on the calling thread.
     */
    std::vector<SweepOutcome> run(const std::vector<SweepJob> &jobs) const;

  private:
    int jobs_;
    SweepProgressFn progress_;
    SweepCompleteFn complete_;
    const std::atomic<bool> *stop_ = nullptr;
};

/** One-shot convenience over SweepRunner. */
std::vector<SweepOutcome> runSweep(const std::vector<SweepJob> &jobs,
                                   int threads = 0);

/** Write every outcome (including failures) to a result sink. */
void writeOutcomes(ResultSink &sink,
                   const std::vector<SweepOutcome> &outcomes);

/**
 * The telemetry traces of a sweep, in submission order (jobs without a
 * trace are skipped). Because outcomes land at their submission index,
 * the merged sequence is identical whatever the worker count — the
 * property the telemetry determinism test asserts.
 */
std::vector<TelemetryTrace> collectTelemetry(
    const std::vector<SweepOutcome> &outcomes);

/**
 * Shared command-line surface of the sweep-driven harnesses:
 *   --jobs N    worker threads (also: NOC_JOBS; default: all cores)
 *   --json P    append structured results as JSON lines to P
 *               (also: NOC_RESULTS; "-" writes to stdout)
 *   --csv P     append structured results as CSV rows to P
 *   --progress  single updating progress line on stderr
 * Unknown arguments fatal with a usage message naming the harness.
 */
struct SweepCli
{
    int jobs = 0;             ///< 0 = resolveJobCount() decides
    std::string jsonPath;     ///< empty = no JSON output
    std::string csvPath;      ///< empty = no CSV output
    bool progress = false;    ///< live progress line (stderr)
};

SweepCli parseSweepCli(int argc, char **argv);

/**
 * Emit outcomes to the sinks the CLI asked for (no-op when neither
 * --json nor --csv / NOC_RESULTS is set). Files are appended to, so a
 * series of harness runs accumulates one results trajectory.
 */
void emitStructuredResults(const SweepCli &cli,
                           const std::vector<SweepOutcome> &outcomes);

} // namespace noc

#endif // NOC_SIM_SWEEP_HPP
