#include "sim/energy.hpp"

namespace noc {

EnergyBreakdown
computeEnergy(const RouterStats &stats, const EnergyParams &params)
{
    EnergyBreakdown e;
    e.bufferPj =
        params.bufferWritePj * static_cast<double>(stats.bufferWrites) +
        params.bufferReadPj * static_cast<double>(stats.bufferReads);
    e.crossbarPj =
        params.crossbarPj * static_cast<double>(stats.xbarTraversals);
    e.arbiterPj = params.arbiterPj *
        static_cast<double>(stats.saGrants + stats.vaGrants +
                            stats.wastedGrants);
    return e;
}

} // namespace noc
