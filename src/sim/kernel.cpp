#include "sim/kernel.hpp"

#include "network/network.hpp"
#include "router/kernels.hpp"
#include "router/router_pipeline.hpp"
#include "routing/routing.hpp"
#include "topology/topology.hpp"

namespace noc {

KernelInfo
resolveKernel(const SimConfig &cfg)
{
    const std::unique_ptr<Topology> topo = makeTopology(cfg);
    const std::unique_ptr<RoutingAlgorithm> routing =
        makeRouting(cfg.routing, *topo);
    // Network wraps `routing` in a FaultRouting adapter when the fault
    // plan kills links; no need to replay that here — a non-empty
    // faultSpec already disqualifies specialization inside the factory.

    const RouterOps *common = nullptr;
    for (RouterId r = 0; r < topo->numRouters(); ++r) {
        const RouterOps *ops = selectRouterOps(
            cfg, *routing, topo->numInputPorts(r), topo->numOutputPorts(r));
        if (ops == nullptr || (common != nullptr && ops != common))
            return {routerOpsFor<GenericPolicy>().name, false};
        common = ops;
    }
    if (common == nullptr)  // zero-router topologies cannot exist, but
        return {routerOpsFor<GenericPolicy>().name, false};
    return {common->name, common->specialized};
}

} // namespace noc
