/**
 * @file
 * Crash-tolerant sweep checkpointing: a JSONL journal of completed
 * jobs that a killed sweep replays on `--resume`.
 *
 * Byte-identity is the design center. Re-deriving output from parsed
 * floats would round; instead each journal entry stores the *rendered*
 * output of the finished job — the exact JSON lines and CSV rows the
 * result sinks produced, plus the stdout-table scalars as "%.17g"
 * strings (round-trip exact through strtod). A resumed sweep replays
 * stored lines verbatim and re-runs only the jobs the journal does not
 * cover, so the final outputs are byte-for-byte what an uninterrupted
 * sweep would have written.
 *
 * Jobs are matched to entries by a content key (FNV-1a over the label,
 * the config description, the seed, the fault plan and the phase
 * windows), not by index — editing the sweep's parameter lists between
 * runs invalidates exactly the jobs that changed.
 *
 * Entries are appended one flushed line at a time from the sweep's
 * serialized completion hook, so a SIGKILL can at worst truncate the
 * final line; load() tolerates that by dropping any line that does not
 * parse. Interrupted outcomes are never journaled — an interrupted job
 * must re-run.
 */

#ifndef NOC_SIM_JOURNAL_HPP
#define NOC_SIM_JOURNAL_HPP

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "sim/sweep.hpp"

namespace noc {

/** One completed job, as rendered output plus replay scalars. */
struct JournalEntry
{
    std::uint64_t key = 0;          ///< journalKey() of the job
    std::string label;
    bool ok = false;
    std::string error;              ///< exception text when !ok
    int attempts = 0;

    /// Exact lines a JsonLinesSink produced for this outcome (result
    /// record first, then sample/flow/watchdog records).
    std::vector<std::string> jsonLines;
    /// Exact rows a CsvSink produced (no header row).
    std::vector<std::string> csvRows;

    // stdout-table scalars, "%.17g" (round-trip exact).
    std::string totalLat;
    std::string netLat;
    std::string p99;
    std::string throughput;
    std::string reuse;              ///< reusability fraction (not %)
    std::string energy;             ///< total energy in pJ

    bool drained = false;

    // Run-health verdict line.
    int verdict = 0;                ///< static_cast<int>(RunVerdict)
    std::string satReason;
    std::string measureUsed;        ///< u64 as decimal string
    std::string steadyCycle;
    std::string cov;                ///< "%.17g"

    // Verifier verdict.
    std::string verifyChecks;       ///< u64 as decimal string
    std::string verifyViolations;
    std::string verifyReport;

    // Fault degradation summary (sweep-mode stdout section).
    bool faultActive = false;
    std::string faultOffered;       ///< u64 as decimal string
    std::string faultDelivered;
    std::string faultDropped;
    std::string faultUnroutable;
    std::string faultLinksKilled;
    std::string faultRetransmits;
    std::string faultOfferedTp;     ///< "%.17g"
    std::string faultAchievedTp;
};

/**
 * Content key of a job: FNV-1a 64 over label, cfg.describe(), seed,
 * fault plan (excluded from describe() for output byte-identity, so
 * hashed explicitly) and the phase windows.
 */
std::uint64_t journalKey(const SweepJob &job);

/** Render a finished outcome into its journal entry. */
JournalEntry makeJournalEntry(const SweepJob &job, const SweepOutcome &out);

/**
 * Reconstruct the outcome of a journaled job for replay: table scalars,
 * health verdict and verifier verdict land in the right SimResult /
 * SweepOutcome fields; everything else stays default-constructed (the
 * structured outputs replay from the stored lines, not from this).
 */
SweepOutcome outcomeFromEntry(const JournalEntry &entry,
                              const SweepJob &job);

/** One entry serialized as a single JSON line (no trailing newline). */
std::string journalEntryToJson(const JournalEntry &entry);

/** Parse one journal line; returns false on malformed input. */
bool parseJournalEntry(const std::string &line, JournalEntry &entry);

/** Append-only journal writer: one flushed JSONL line per entry. */
class SweepJournal
{
  public:
    /** Opens `path` for appending; fatals if it cannot be opened. */
    explicit SweepJournal(const std::string &path);

    /** Write one entry and flush, so a kill loses at most one line. */
    void append(const JournalEntry &entry);

    /**
     * Load every parseable entry of `path`, keyed by journalKey; a
     * missing file yields an empty map and a truncated final line is
     * dropped silently. Later entries win on key collision.
     */
    static std::map<std::uint64_t, JournalEntry> load(
        const std::string &path);

  private:
    std::ofstream os_;
};

} // namespace noc

#endif // NOC_SIM_JOURNAL_HPP
