#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/log.hpp"
#include "metrics/convergence.hpp"
#include "metrics/saturation.hpp"
#include "metrics/watchdog.hpp"
#include "sim/shard.hpp"

namespace noc {

Simulator::Simulator(const SimConfig &cfg,
                     std::unique_ptr<TrafficSource> source)
    : net_(cfg), source_(std::move(source))
{
    NOC_ASSERT(source_ != nullptr, "simulator needs a traffic source");
#if NOC_VERIFY_ENABLED
    if (const char *env = std::getenv("NOC_VERIFY")) {
        VerifyConfig vcfg;
        vcfg.mask = verifyMaskFromSpec(env);
        if (vcfg.mask != 0) {
            vcfg.failFast = true;
            envVerifier_ = std::make_unique<InvariantChecker>(vcfg);
            setVerifier(envVerifier_.get());
        }
    }
#endif
}

void
Simulator::accumulateCompletion(const CompletedPacket &p)
{
    const auto total = static_cast<double>(p.ejectTime - p.createTime);
    allPhaseInterval_.add(total);
    if (!p.measured)
        return;
    const auto net_lat = static_cast<double>(p.ejectTime - p.injectTime);
    totalLatency_.add(total);
    netLatency_.add(net_lat);
    hopCount_.add(static_cast<double>(p.hops));
    (p.size == 1 ? addrLatency_ : dataLatency_).add(total);
    intervalLatency_.add(total);
    latencyHist_.add(total);
    measuredFlits_ += p.size;
    intervalFlits_ += p.size;
    if (flowsEnabled_)
        flows_.record(p.src, p.dst, total);
}

void
Simulator::stepOnce(SimPhase phase)
{
    source_->tick(net_, net_.now(), phase);
    net_.step();

    completedScratch_.clear();
    net_.drainCompleted(completedScratch_);
    for (const CompletedPacket &p : completedScratch_) {
        source_->onPacketDelivered(p, net_, net_.now());
        accumulateCompletion(p);
    }
}

SimResult
Simulator::run(const SimWindows &windows)
{
    const RunHealthConfig &hc = windows.health;

    // Sharded intra-run parallelism (sim/shard.hpp): taken only when
    // the run is eligible — a fresh network, an open-loop source, and
    // none of the serial-only riders (fault plans, telemetry, the
    // profiler, health monitors, interval samples). Everything the
    // sharded path produces is bit-identical to the serial loop
    // (tests/sim/shard_parity_test.cpp), so eligibility only gates
    // features the v1 path does not carry, never results.
    {
        const SimConfig &cfg = net_.config();
        const int shards = resolveShardCount(cfg);
        if (shards > 1 && net_.now() == 0 && source_->openLoop() &&
            cfg.faultSpec.empty() && cfg.churnSpec.empty() &&
            cfg.dropCreditEvery == 0 &&
            telem_ == nullptr && prof_ == nullptr &&
            windows.sampleInterval == 0 && !hc.any())
            return runSharded(windows, shards);
    }
    // The monitors consume the interval-sample stream; when the caller
    // did not configure one, health monitoring brings its own cadence.
    const Cycle sample_every = windows.sampleInterval > 0
        ? windows.sampleInterval
        : (hc.needsSamples() ? hc.sampleEvery : 0);
    flowsEnabled_ = hc.flows.enabled;

    SaturationConfig sat_cfg = hc.saturation;
    if (sat_cfg.minBacklog == 0)
        sat_cfg.minBacklog =
            4ull * static_cast<std::uint64_t>(net_.numNodes());

    ConvergenceMonitor warmup_monitor(hc.convergence);
    ConvergenceMonitor monitor(hc.convergence);
    SaturationGuard guard(sat_cfg);
    Watchdog watchdog(hc.watchdog);
    RunHealth health;

    // Cooperative cancellation: cheap enough to poll every few thousand
    // cycles without perturbing anything (the checker observes only).
    constexpr Cycle kCancelMask = 4095;
    auto cancelled = [&windows](Cycle c) {
        return windows.cancel && (c & kCancelMask) == 0 && windows.cancel();
    };

    const bool adaptive = hc.convergence.enabled &&
        hc.convergence.adaptiveWarmup && sample_every > 0;
    for (Cycle c = 0; c < windows.warmup; ++c) {
        if (cancelled(c))
            throw SimCancelled("cancelled during warmup");
        stepOnce(SimPhase::Warmup);
        ++health.warmupUsed;
        if (watchdog.due(net_.now()))
            watchdog.snapshot(net_, net_.now());
        if (adaptive && (c + 1) % sample_every == 0) {
            // Warmup packets are unmeasured, so steady-state detection
            // here runs on the all-completions interval accumulator.
            warmup_monitor.observe(net_.now(), allPhaseInterval_.count(),
                                   allPhaseInterval_.mean());
            allPhaseInterval_.reset();
            if (warmup_monitor.steady())
                break;
        }
    }
    allPhaseInterval_.reset();

    const RouterStats before = net_.aggregateRouterStats();
    for (Cycle c = 0; c < windows.measure; ++c) {
        if (cancelled(c))
            throw SimCancelled("cancelled during measurement");
        stepOnce(SimPhase::Measure);
        ++health.measureUsed;
        if (watchdog.due(net_.now()))
            watchdog.snapshot(net_, net_.now());
        if (sample_every > 0 && (c + 1) % sample_every == 0) {
            SimSample sample;
            sample.cycle = net_.now();
            sample.packets = intervalLatency_.count();
            sample.avgLatency = intervalLatency_.mean();
            sample.throughput = static_cast<double>(intervalFlits_) /
                (static_cast<double>(sample_every) *
                 static_cast<double>(net_.numNodes()));
            samples_.push_back(sample);
            intervalLatency_.reset();
            intervalFlits_ = 0;

            const std::uint64_t backlog = net_.packetsOutstanding();
            health.peakBacklog = std::max(health.peakBacklog, backlog);
            if (hc.convergence.enabled)
                monitor.observe(sample.cycle, sample.packets,
                                sample.avgLatency);
            if (hc.saturation.enabled) {
                guard.observe(sample.cycle, sample.avgLatency, backlog);
                if (guard.saturated())
                    break;
            }
        }
    }

    // A saturated network cannot drain: skip the measurement remainder
    // and the whole drain phase — that wasted budget is the guard's
    // sweep speedup.
    Cycle drained_cycles = 0;
    const FaultController *faults = net_.faults();
    while (!guard.saturated() &&
           !(net_.idle() && source_->exhausted()) &&
           drained_cycles < windows.drainLimit) {
        if (cancelled(drained_cycles))
            throw SimCancelled("cancelled during drain");
        stepOnce(SimPhase::Drain);
        ++drained_cycles;
        if (watchdog.due(net_.now()))
            watchdog.snapshot(net_, net_.now());
        // A dead or permanently-down link wedges the packets routed
        // onto it by design: end the drain quietly once nothing has
        // moved for a while — the degradation report (not a stall
        // warning) is the result. Never while a revival is scheduled:
        // deferred flits resume when the link comes back.
        const bool revival =
            faults != nullptr && faults->revivalPending(net_.now());
        if (faults != nullptr && !revival && faults->anyUnavailable() &&
            net_.cyclesSinceProgress() > 4 * faults->retryTimeout() + 64)
            break;
        // Forward-progress watchdog: fail fast on a wedged network
        // instead of spinning to the drain limit. A pending revival is
        // not a wedge — the churn plan promises the outage ends.
        if (!net_.idle() && !revival &&
            net_.cyclesSinceProgress() > 10000) {
            NOC_WARN("network stalled during drain: " +
                     net_.describeStall());
            break;
        }
    }

    if (verifier_ && !guard.saturated() && net_.idle() &&
        source_->exhausted()) {
        // The network reports idle as soon as the last flit ejects,
        // while its ejection/upstream credits are still on the wire.
        // Let them land before the exhaustive drained audit (bounded by
        // the longest credit path; EVC credits travel two hops).
        const SimConfig &cfg = net_.config();
        const Cycle settle = 2 *
            static_cast<Cycle>(std::max(cfg.linkLatency,
                                        cfg.creditLatency)) *
            static_cast<Cycle>(cfg.meshWidth + cfg.meshHeight) + 8;
        for (Cycle c = 0; c < settle; ++c)
            net_.step();
        verifier_->checkDrained(net_.now());
    }

    health.steadyCycle = monitor.steadyCycle();
    health.latencyCov = monitor.cov();
    if (guard.saturated()) {
        health.verdict = RunVerdict::Saturated;
        health.saturationReason = guard.reason();
    } else if (hc.convergence.enabled) {
        health.verdict = monitor.steady() ? RunVerdict::Converged
                                          : RunVerdict::NotConverged;
    }
    health.watchdog = watchdog.takeSnapshots();
    return assembleResult(before, std::move(health));
}

SimResult
Simulator::assembleResult(const RouterStats &before, RunHealth &&health)
{
    const RouterStats after = net_.aggregateRouterStats();

    SimResult result;
    result.cyclesRun = net_.now();
    result.drained = net_.idle() && source_->exhausted();
    result.measuredPackets = totalLatency_.count();
    result.avgTotalLatency = totalLatency_.mean();
    result.avgNetLatency = netLatency_.mean();
    result.p99TotalLatency = latencyHist_.quantile(0.99);
    result.avgHops = hopCount_.mean();
    result.avgLatencyAddrPkts = addrLatency_.mean();
    result.avgLatencyDataPkts = dataLatency_.mean();
    result.samples = samples_;
    result.throughput = static_cast<double>(measuredFlits_) /
        (static_cast<double>(health.measureUsed) *
         static_cast<double>(net_.numNodes()));
    result.health = std::move(health);
    result.flows = std::move(flows_);

    // Event deltas over the measurement + drain interval.
    RouterStats delta;
    delta.flitsArrived = after.flitsArrived - before.flitsArrived;
    delta.bufferWrites = after.bufferWrites - before.bufferWrites;
    delta.bufferReads = after.bufferReads - before.bufferReads;
    delta.xbarTraversals = after.xbarTraversals - before.xbarTraversals;
    delta.vaGrants = after.vaGrants - before.vaGrants;
    delta.saGrants = after.saGrants - before.saGrants;
    delta.saBypasses = after.saBypasses - before.saBypasses;
    delta.bufferBypasses = after.bufferBypasses - before.bufferBypasses;
    delta.headTraversals = after.headTraversals - before.headTraversals;
    delta.headSaBypasses = after.headSaBypasses - before.headSaBypasses;
    delta.headBufferBypasses =
        after.headBufferBypasses - before.headBufferBypasses;
    delta.expressBypasses = after.expressBypasses - before.expressBypasses;
    delta.wastedGrants = after.wastedGrants - before.wastedGrants;
    delta.localityHeads = after.localityHeads - before.localityHeads;
    delta.localityHits = after.localityHits - before.localityHits;

    result.routerTotals = delta;
    result.pcTotals = net_.aggregatePcStats();
    result.niTotals = net_.aggregateNiStats();
    result.energy = computeEnergy(delta);

    if (delta.xbarTraversals > 0) {
        result.reusability = static_cast<double>(delta.circuitReuses()) /
            static_cast<double>(delta.xbarTraversals);
    }
    if (delta.localityHeads > 0) {
        result.crossbarLocality = static_cast<double>(delta.localityHits) /
            static_cast<double>(delta.localityHeads);
    }
    if (result.niTotals.localityPackets > 0) {
        result.endToEndLocality =
            static_cast<double>(result.niTotals.localityHits) /
            static_cast<double>(result.niTotals.localityPackets);
    }
    if (telem_)
        result.telemetry = telem_->counters();
    if (const FaultController *faults = net_.faults())
        result.fault = faults->report(result.cyclesRun, net_.numNodes());
    return result;
}

SimResult
Simulator::runSharded(const SimWindows &windows, int num_shards)
{
    const ShardPlan plan =
        makeShardPlan(net_.config(), net_.topology(), num_shards);
    NOC_ASSERT(plan.numShards >= 2, "sharded run needs >= 2 shards");

    RunHealth health;
    const Cycle window = plan.window;

    // Stage one span of injections on this thread: the source consumes
    // its RNG in exactly the serial order (cycle-major, node order) and
    // the network records each packet against its cycle for the owning
    // shard thread to replay.
    auto stage = [&](Cycle from, Cycle to, SimPhase phase) {
        net_.shardStaging(true);
        for (Cycle c = from; c < to; ++c) {
            net_.shardStageCycle(c);
            source_->tick(net_, c, phase);
        }
        net_.shardStaging(false);
    };

    // Merge the window's completions across shards back into the serial
    // delivery order: at most one packet completes per NI per cycle, so
    // (ejectTime, dst) keys are unique and reproduce the serial
    // cycle-major, node-ascending drain — which keeps the double
    // additions in the accumulators in the serial order, bit for bit.
    auto merge_completions = [&] {
        completedScratch_.clear();
        net_.takeShardCompletions(completedScratch_);
        std::sort(completedScratch_.begin(), completedScratch_.end(),
                  [](const CompletedPacket &a, const CompletedPacket &b) {
                      return a.ejectTime != b.ejectTime
                                 ? a.ejectTime < b.ejectTime
                                 : a.dst < b.dst;
                  });
        for (const CompletedPacket &p : completedScratch_) {
            // The serial loop reports a delivery the cycle after the
            // flit ejected (now has already advanced past it).
            source_->onPacketDelivered(p, net_, p.ejectTime + 1);
            accumulateCompletion(p);
        }
    };

    constexpr Cycle kCancelMask = 4095;
    auto cancelled = [&windows](Cycle c) {
        return windows.cancel && (c & kCancelMask) == 0 && windows.cancel();
    };

    net_.beginSharded(plan);
    RouterStats before;
    Cycle drained_cycles = 0;
    {
        // Unwind order matters on the cancellation path: the executor
        // (declared second) joins its threads first, then the guard
        // collapses the network back to serial.
        struct ShardedGuard
        {
            Network &net;
            ~ShardedGuard()
            {
                if (net.sharded())
                    net.endSharded();
            }
        } shard_guard{net_};
        ShardExecutor exec(net_, plan);

        Cycle now = 0;
        while (now < windows.warmup) {
            if (cancelled(now))
                throw SimCancelled("cancelled during warmup");
            const Cycle to = std::min(now + window, windows.warmup);
            stage(now, to, SimPhase::Warmup);
            exec.runWindow(now, to);
            net_.shardBarrier(to);
            merge_completions();
            now = to;
        }
        health.warmupUsed = windows.warmup;
        allPhaseInterval_.reset();

        before = net_.aggregateRouterStats();
        const Cycle measure_end = windows.warmup + windows.measure;
        while (now < measure_end) {
            if (cancelled(now))
                throw SimCancelled("cancelled during measurement");
            const Cycle to = std::min(now + window, measure_end);
            stage(now, to, SimPhase::Measure);
            exec.runWindow(now, to);
            net_.shardBarrier(to);
            merge_completions();
            now = to;
        }
        health.measureUsed = windows.measure;

        // Drain advances one cycle per window: the serial loop decides
        // to stop (idle, stall, limit) against every cycle's state, and
        // overshooting by even one cycle would drift the allocator-side
        // stats, so the sharded path must make the same per-cycle
        // decisions.
        while (!(net_.idle() && source_->exhausted()) &&
               drained_cycles < windows.drainLimit) {
            if (cancelled(drained_cycles))
                throw SimCancelled("cancelled during drain");
            stage(now, now + 1, SimPhase::Drain);
            exec.runWindow(now, now + 1);
            net_.shardBarrier(now + 1);
            merge_completions();
            ++now;
            ++drained_cycles;
            if (!net_.idle() && net_.cyclesSinceProgress() > 10000) {
                NOC_WARN("network stalled during drain: " +
                         net_.describeStall());
                break;
            }
        }
    }   // executor joins, then the network collapses to serial

    if (verifier_ && net_.idle() && source_->exhausted()) {
        // Identical settle + drained audit as the serial path; only
        // commuting credits are still in flight, and the network is
        // back on the ordinary step() loop.
        const SimConfig &cfg = net_.config();
        const Cycle settle = 2 *
            static_cast<Cycle>(std::max(cfg.linkLatency,
                                        cfg.creditLatency)) *
            static_cast<Cycle>(cfg.meshWidth + cfg.meshHeight) + 8;
        for (Cycle c = 0; c < settle; ++c)
            net_.step();
        verifier_->checkDrained(net_.now());
    }

    SimResult result = assembleResult(before, std::move(health));
    result.shardsUsed = plan.numShards;
    return result;
}

SimResult
runSimulation(const SimConfig &cfg, std::unique_ptr<TrafficSource> source,
              const SimWindows &windows, TelemetrySink *telemetry)
{
    Simulator sim(cfg, std::move(source));
    if (telemetry)
        sim.setTelemetry(telemetry);
    return sim.run(windows);
}

} // namespace noc
