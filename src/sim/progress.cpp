#include "sim/progress.hpp"

#include <iostream>
#include <sstream>

#include "common/stderr_sink.hpp"

namespace noc {

ProgressPrinter::ProgressPrinter() : ProgressPrinter(std::cerr)
{
    // Only the real stderr line coordinates with the shared sink; a
    // test-injected ostringstream never interleaves with warnings.
    registered_ = true;
    setStderrInPlaceLine([this] { eraseLine(); }, [this] { redrawLine(); });
}

ProgressPrinter::ProgressPrinter(std::ostream &os)
    : os_(os), start_(std::chrono::steady_clock::now())
{
}

ProgressPrinter::~ProgressPrinter()
{
    finish();
}

SweepProgressFn
ProgressPrinter::callback()
{
    // The runner serializes observer calls; render() itself takes the
    // stderr mutex so warnings from other threads cannot interleave.
    return [this](const SweepProgressEvent &event) { render(event); };
}

void
ProgressPrinter::eraseLine()
{
    if (lastWidth_ == 0)
        return;
    os_ << '\r' << std::string(lastWidth_, ' ') << '\r' << std::flush;
}

void
ProgressPrinter::redrawLine()
{
    if (lastWidth_ == 0)
        return;
    os_ << '\r' << lastText_ << std::flush;
}

void
ProgressPrinter::render(const SweepProgressEvent &event)
{
    if (!event.ok)
        ++failed_;
    else if (event.verdict == RunVerdict::Saturated)
        ++saturated_;
    else
        ++ok_;

    std::ostringstream line;
    line << '[' << event.completed << '/' << event.total << "] ok:" << ok_;
    if (saturated_ > 0)
        line << " sat:" << saturated_;
    if (failed_ > 0)
        line << " fail:" << failed_;

    const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - start_).count();
    if (event.completed < event.total && event.completed > 0) {
        const auto eta = elapsed *
            static_cast<long long>(event.total - event.completed) /
            static_cast<long long>(event.completed);
        line << " eta:" << eta << 's';
    } else {
        line << ' ' << elapsed << 's';
    }

    line << ' ' << event.label;
    if (event.ok && event.verdict != RunVerdict::None)
        line << " (" << toString(event.verdict) << ')';

    std::string text = line.str();
    const std::size_t width = text.size();
    // Pad over the previous (possibly longer) line before rewriting.
    if (width < lastWidth_)
        text.append(lastWidth_ - width, ' ');

    std::lock_guard<std::mutex> lock(stderrMutex());
    lastWidth_ = width;
    lastText_ = text.substr(0, width);
    os_ << '\r' << text << std::flush;
}

void
ProgressPrinter::finish()
{
    {
        std::lock_guard<std::mutex> lock(stderrMutex());
        if (lastWidth_ > 0) {
            os_ << '\r' << std::string(lastWidth_, ' ') << '\r'
                << std::flush;
            lastWidth_ = 0;
            lastText_.clear();
        }
    }
    if (registered_) {
        registered_ = false;
        setStderrInPlaceLine(nullptr, nullptr);
    }
}

} // namespace noc
