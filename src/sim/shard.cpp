#include "sim/shard.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/log.hpp"
#include "network/network.hpp"
#include "topology/topology.hpp"

namespace noc {

Cycle
shardLookahead(const SimConfig &cfg)
{
    // Every emission is scheduled at now + 1 + latency * distance with
    // distance >= 1, so the shortest possible cross-shard flight time
    // bounds the window from below.
    return 1 + static_cast<Cycle>(
                   std::min(cfg.linkLatency, cfg.creditLatency));
}

ShardPlan
makeShardPlan(const SimConfig &cfg, const Topology &topo, int num_shards)
{
    const int rows = topo.height();
    const int shards = std::clamp(num_shards, 1, rows);

    ShardPlan plan;
    plan.numShards = shards;
    plan.window = shardLookahead(cfg);
    plan.routerBegin.resize(shards);
    plan.routerEnd.resize(shards);
    plan.nodeBegin.resize(shards);
    plan.nodeEnd.resize(shards);
    plan.shardOfRouter.resize(topo.numRouters());
    plan.shardOfNode.resize(topo.numNodes());

    const int conc = topo.concentration();
    for (int s = 0; s < shards; ++s) {
        // Row bands [s*rows/shards, (s+1)*rows/shards): contiguous and
        // within one row of equal height.
        const int row_begin = s * rows / shards;
        const int row_end = (s + 1) * rows / shards;
        plan.routerBegin[s] = topo.routerAt(0, row_begin);
        plan.routerEnd[s] = row_end < rows
                                ? topo.routerAt(0, row_end)
                                : static_cast<RouterId>(topo.numRouters());
        plan.nodeBegin[s] = plan.routerBegin[s] * conc;
        plan.nodeEnd[s] = plan.routerEnd[s] * conc;
        for (RouterId r = plan.routerBegin[s]; r < plan.routerEnd[s]; ++r)
            plan.shardOfRouter[static_cast<std::size_t>(r)] = s;
        for (NodeId n = plan.nodeBegin[s]; n < plan.nodeEnd[s]; ++n)
            plan.shardOfNode[static_cast<std::size_t>(n)] = s;
    }
    return plan;
}

int
resolveShardCount(const SimConfig &cfg)
{
    int requested = cfg.shards;
    // The env override only applies to the default so explicit test and
    // sweep configurations keep meaning what they say; the golden env
    // neutralizes it (NOC_SHARDS=) to keep default-path output pinned.
    if (requested == 1) {
        if (const char *env = std::getenv("NOC_SHARDS")) {
            const std::string spec(env);
            if (spec == "auto") {
                requested = 0;
            } else if (!spec.empty()) {
                const long v = std::atol(spec.c_str());
                if (v >= 0)
                    requested = static_cast<int>(v);
            }
        }
    }
    if (requested == 1)
        return 1;

    const int rows = cfg.meshHeight;
    int shards;
    if (requested == 0) {
        // Auto: sharding only pays once the per-cycle work dwarfs the
        // window barrier. Below ~256 routers the serial loop wins.
        if (cfg.numRouters() < 256)
            return 1;
        const unsigned hw = std::thread::hardware_concurrency();
        shards = std::min(static_cast<int>(hw > 0 ? hw : 1),
                          std::min(rows, cfg.numRouters() / 64));
    } else {
        shards = requested;
    }
    return std::clamp(shards, 1, rows);
}

int
composeWorkerCap(int workers, int max_shards, int hardware_threads)
{
    if (workers < 1)
        workers = 1;
    if (max_shards <= 1)
        return workers;
    const int hw = hardware_threads > 0 ? hardware_threads : 1;
    return std::max(1, std::min(workers, hw / max_shards));
}

ShardExecutor::ShardExecutor(Network &net, const ShardPlan &plan)
    : net_(net), numShards_(plan.numShards)
{
    NOC_ASSERT(numShards_ >= 1, "executor needs at least one shard");
    threads_.reserve(static_cast<std::size_t>(numShards_));
    for (int s = 0; s < numShards_; ++s)
        threads_.emplace_back([this, s] { workerLoop(s); });
}

ShardExecutor::~ShardExecutor()
{
    quit_.store(true);
    for (std::thread &t : threads_)
        t.join();
}

void
ShardExecutor::workerLoop(int shard)
{
    std::uint64_t seen = 0;
    for (;;) {
        while (epoch_.load(std::memory_order_acquire) == seen) {
            if (quit_.load(std::memory_order_acquire))
                return;
            std::this_thread::yield();
        }
        seen = epoch_.load(std::memory_order_acquire);
        try {
            net_.shardAdvance(shard, from_, to_);
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex_);
            if (!error_)
                error_ = std::current_exception();
        }
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
ShardExecutor::runWindow(Cycle from, Cycle to)
{
    // done_ is quiescent here: the previous runWindow returned only
    // after every worker bumped it, and workers touch nothing between
    // epochs. The release bump of epoch_ publishes [from_, to_).
    from_ = from;
    to_ = to;
    done_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    while (done_.load(std::memory_order_acquire) < numShards_)
        std::this_thread::yield();
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lock(errorMutex_);
        err = error_;
        error_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace noc
