#include "sim/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "network/network.hpp"

namespace noc {

void
printResult(std::ostream &os, const std::string &title,
            const SimResult &result)
{
    os << title << "\n";
    os << "  packets measured        " << result.measuredPackets << "\n";
    os << "  avg packet latency      " << result.avgTotalLatency
       << " cycles\n";
    os << "  avg network latency     " << result.avgNetLatency
       << " cycles\n";
    os << "  p99 packet latency      " << result.p99TotalLatency
       << " cycles\n";
    os << "  avg hops                " << result.avgHops << "\n";
    os << "  throughput              " << result.throughput
       << " flits/node/cycle\n";
    os << "  circuit reusability     " << formatPercent(result.reusability)
       << "\n";
    os << "  crossbar locality       "
       << formatPercent(result.crossbarLocality) << "\n";
    os << "  end-to-end locality     "
       << formatPercent(result.endToEndLocality) << "\n";
    os << "  router energy           " << result.energy.totalPj() / 1000.0
       << " nJ (buffer " << formatPercent(result.energy.bufferPj /
                                          result.energy.totalPj())
       << ", crossbar "
       << formatPercent(result.energy.crossbarPj / result.energy.totalPj())
       << ")\n";
    os << "  drained                 " << (result.drained ? "yes" : "NO")
       << "\n";
}

std::vector<RouterActivity>
routerActivity(Network &net, Cycle cycles)
{
    NOC_ASSERT(cycles > 0, "activity needs a nonzero interval");
    std::vector<RouterActivity> out;
    out.reserve(net.numRouters());
    for (RouterId r = 0; r < net.numRouters(); ++r) {
        const RouterStats &s = net.router(r).stats();
        RouterActivity a;
        a.router = r;
        a.traversals = s.xbarTraversals;
        a.crossbarUtil =
            static_cast<double>(s.xbarTraversals) / static_cast<double>(cycles);
        a.reuseRate = s.xbarTraversals == 0
            ? 0.0
            : static_cast<double>(s.circuitReuses()) /
                static_cast<double>(s.xbarTraversals);
        a.wastedGrants = s.wastedGrants;
        Router &router = net.router(r);
        for (PortId p = 0; p < router.numInputPorts(); ++p) {
            for (VcId v = 0; v < router.numVcs(); ++v) {
                a.peakVcOccupancy = std::max<std::uint64_t>(
                    a.peakVcOccupancy, router.inputVc(p, v).peakOccupancy());
            }
        }
        out.push_back(a);
    }
    return out;
}

RouterActivity
hottest(const std::vector<RouterActivity> &activity)
{
    if (activity.empty())
        return {};
    return *std::max_element(activity.begin(), activity.end(),
                             [](const RouterActivity &a,
                                const RouterActivity &b)
                             { return a.traversals < b.traversals; });
}

std::string
CsvWriter::escape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string quoted = "\"";
    for (const char c : field) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            os_ << ',';
        os_ << escape(fields[i]);
    }
    os_ << '\n';
}

void
CsvWriter::writeRow(const std::string &label,
                    const std::vector<double> &values)
{
    os_ << escape(label);
    for (const double v : values) {
        std::ostringstream tmp;
        tmp << v;
        os_ << ',' << tmp.str();
    }
    os_ << '\n';
}

} // namespace noc
