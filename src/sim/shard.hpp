/**
 * @file
 * Sharded intra-run parallelism: spatial partitioning of one simulation
 * across threads (ROADMAP item 3).
 *
 * The network is cut into contiguous row bands, one shard per band.
 * Within one cycle no router communicates with another — every emission
 * is scheduled at least `1 + latency` cycles into the future — so each
 * shard can advance independently through a conservative lookahead
 * window of W = 1 + min(linkLatency, creditLatency) cycles: the
 * earliest cycle a flit or credit created inside window [T, T+W) can
 * arrive at another shard is T+W, the start of the next window.
 * Boundary events cross through fixed-capacity SPSC queues drained at
 * the window barrier, and every flit carries its creation cycle and a
 * creator rank so arrival buckets replay in exactly the serial event
 * order — stats, delivery streams, and RNG consumption are independent
 * of the thread count (pinned by tests/sim/shard_parity_test.cpp).
 *
 * This header owns the partitioner (ShardPlan), the shards=auto|N
 * resolution, and the thread team (ShardExecutor); the partitioned
 * stepping path itself lives in network/network.cpp, the window
 * orchestration in sim/simulator.cpp.
 */

#ifndef NOC_SIM_SHARD_HPP
#define NOC_SIM_SHARD_HPP

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace noc {

class Network;
class Topology;

/**
 * A spatial partition of one topology into contiguous row bands.
 * Router ids are row-major and node ids are router-major, so each
 * shard covers a contiguous id range on both tables.
 */
struct ShardPlan
{
    int numShards = 1;
    /// Conservative lookahead: 1 + min(linkLatency, creditLatency).
    /// Any window length <= this is exact; the executor uses exactly it.
    Cycle window = 1;

    std::vector<RouterId> routerBegin;  ///< [shard] first router id
    std::vector<RouterId> routerEnd;    ///< [shard] one past the last
    std::vector<NodeId> nodeBegin;      ///< [shard] first node id
    std::vector<NodeId> nodeEnd;        ///< [shard] one past the last
    std::vector<int> shardOfRouter;     ///< [router] owning shard
    std::vector<int> shardOfNode;       ///< [node] owning shard
};

/** The conservative lookahead window for a configuration. */
Cycle shardLookahead(const SimConfig &cfg);

/**
 * Partition `topo` into `num_shards` row bands (clamped to the number
 * of rows, minimum 1). Band heights differ by at most one row.
 */
ShardPlan makeShardPlan(const SimConfig &cfg, const Topology &topo,
                        int num_shards);

/**
 * Resolve cfg.shards to a concrete shard count:
 *  - 1 (the default) consults the NOC_SHARDS environment variable
 *    ("auto" or a count), so a whole test suite can be forced onto the
 *    sharded path without touching configs; explicit settings win.
 *  - 0 (auto) picks 1 for networks under 256 routers (the serial loop
 *    is faster than any barrier), else min(hardware threads, rows,
 *    routers / 64).
 *  - N >= 2 is honoured as given.
 * The result is clamped to the row count; 1 means "run serial".
 */
int resolveShardCount(const SimConfig &cfg);

/**
 * Persistent thread team advancing every shard of a network through
 * lookahead windows. Workers spin-wait on an epoch counter (sequentially
 * consistent handshakes only — the TSan twin runs this path clean), so
 * per-window dispatch costs no condition-variable round trip; runWindow
 * blocks the caller until every shard reaches the barrier.
 *
 * The executor only drives Network::shardAdvance; staging traffic,
 * draining the boundary queues, and merging per-shard deltas stay with
 * the caller (Simulator::runSharded / Network::shardBarrier).
 */
class ShardExecutor
{
  public:
    ShardExecutor(Network &net, const ShardPlan &plan);
    ~ShardExecutor();

    ShardExecutor(const ShardExecutor &) = delete;
    ShardExecutor &operator=(const ShardExecutor &) = delete;

    /**
     * Advance every shard through cycles [from, to), then return.
     * Rethrows (on the calling thread) anything a worker threw.
     */
    void runWindow(Cycle from, Cycle to);

  private:
    void workerLoop(int shard);

    Network &net_;
    const int numShards_;
    std::vector<std::thread> threads_;

    // Window handshake: main publishes [from_, to_) then bumps epoch_;
    // each worker advances its shard once per epoch and bumps done_.
    Cycle from_ = 0;
    Cycle to_ = 0;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<int> done_{0};
    std::atomic<bool> quit_{false};

    std::mutex errorMutex_;
    std::exception_ptr error_;
};

/**
 * Worker cap for composing the sweep thread pool with intra-run shard
 * threads: with every job potentially running `max_shards` threads of
 * its own, the pool must shrink so jobs x shards stays at or under the
 * hardware thread count (minimum one worker). Pure so the oversubscription
 * rule is unit-testable (tests/sim/shard_compose_test.cpp).
 */
int composeWorkerCap(int workers, int max_shards, int hardware_threads);

} // namespace noc

#endif // NOC_SIM_SHARD_HPP
