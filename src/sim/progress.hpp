/**
 * @file
 * Terminal progress line for sweeps: renders SweepProgressEvents as a
 * single in-place line ("\r"-rewritten, stderr by default) with
 * completion counts, a verdict tally, ETA, and the label that just
 * finished. Results own stdout; the printer never writes there, so
 * `harness --progress > results.txt` stays clean.
 *
 * Usage:
 *     ProgressPrinter progress;
 *     if (cli.progress)
 *         runner.onProgress(progress.callback());
 *     auto outcomes = runner.run(jobs);
 *     progress.finish();   // clears the line; no-op if nothing rendered
 */

#ifndef NOC_SIM_PROGRESS_HPP
#define NOC_SIM_PROGRESS_HPP

#include <chrono>
#include <cstddef>
#include <iosfwd>

#include "sim/sweep.hpp"

namespace noc {

class ProgressPrinter
{
  public:
    /** Renders to stderr (registers with the shared stderr sink so
     *  warnings erase/redraw the line instead of smearing it). */
    ProgressPrinter();
    /** Renders to `os` (tests capture an ostringstream). */
    explicit ProgressPrinter(std::ostream &os);
    ~ProgressPrinter();

    ProgressPrinter(const ProgressPrinter &) = delete;
    ProgressPrinter &operator=(const ProgressPrinter &) = delete;

    /** The observer to install via SweepRunner::onProgress. */
    SweepProgressFn callback();

    /**
     * Erase the progress line so subsequent output starts on a clean
     * row. Safe to call unconditionally and repeatedly.
     */
    void finish();

    std::size_t okCount() const { return ok_; }
    std::size_t failCount() const { return failed_; }
    std::size_t saturatedCount() const { return saturated_; }

  private:
    void render(const SweepProgressEvent &event);
    void eraseLine();   ///< caller holds stderrMutex()
    void redrawLine();  ///< caller holds stderrMutex()

    std::ostream &os_;
    std::chrono::steady_clock::time_point start_;
    std::size_t ok_ = 0;
    std::size_t failed_ = 0;
    std::size_t saturated_ = 0;
    std::size_t lastWidth_ = 0;
    std::string lastText_;
    bool registered_ = false;  ///< erase/redraw hooks installed (stderr)
};

} // namespace noc

#endif // NOC_SIM_PROGRESS_HPP
