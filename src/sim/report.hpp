/**
 * @file
 * Result reporting: human-readable SimResult summaries, per-router
 * utilization breakdowns (for spotting hotspots, e.g. jbb's), and a
 * small CSV writer so harness output can feed plotting scripts.
 */

#ifndef NOC_SIM_REPORT_HPP
#define NOC_SIM_REPORT_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace noc {

class Network;

/** Multi-line human-readable summary of one run. */
void printResult(std::ostream &os, const std::string &title,
                 const SimResult &result);

/** Per-router activity snapshot. */
struct RouterActivity
{
    RouterId router = kInvalidRouter;
    std::uint64_t traversals = 0;   ///< crossbar traversals
    double crossbarUtil = 0.0;      ///< traversals / cycles
    double reuseRate = 0.0;         ///< circuit reuses / traversals
    std::uint64_t wastedGrants = 0;
    /// Deepest any input-VC FIFO got over the run (congestion signal).
    std::uint64_t peakVcOccupancy = 0;
};

/** Snapshot every router's counters, normalized over `cycles`. */
std::vector<RouterActivity> routerActivity(Network &net, Cycle cycles);

/**
 * The busiest router in the snapshot (hotspot detection). An empty
 * snapshot yields the default RouterActivity, recognisable by
 * router == kInvalidRouter — callers print "n/a" instead of crashing.
 */
RouterActivity hottest(const std::vector<RouterActivity> &activity);

/**
 * Minimal CSV writer: quotes fields containing commas/quotes/newlines,
 * writes one row per call.
 */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    void writeRow(const std::vector<std::string> &fields);
    void writeRow(const std::string &label,
                  const std::vector<double> &values);

  private:
    static std::string escape(const std::string &field);

    std::ostream &os_;
};

} // namespace noc

#endif // NOC_SIM_REPORT_HPP
