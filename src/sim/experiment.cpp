#include "sim/experiment.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "network/network.hpp"
#include "traffic/cmp_model.hpp"

namespace noc {

SimConfig
traceConfig()
{
    SimConfig cfg;
    cfg.topology = TopologyKind::CMesh;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.concentration = 4;
    cfg.numVcs = 4;
    cfg.bufferDepth = 4;
    cfg.routing = RoutingKind::XY;
    cfg.vaPolicy = VaPolicy::Static;
    cfg.scheme = Scheme::Baseline;
    return cfg;
}

SimConfig
syntheticConfig()
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Mesh;
    cfg.meshWidth = 8;
    cfg.meshHeight = 8;
    cfg.concentration = 1;
    cfg.numVcs = 4;
    cfg.bufferDepth = 4;
    cfg.routing = RoutingKind::XY;
    cfg.vaPolicy = VaPolicy::Static;
    cfg.scheme = Scheme::Baseline;
    return cfg;
}

SimWindows
traceWindows()
{
    SimWindows w;
    w.warmup = 3000;
    w.measure = 15000;
    w.drainLimit = 60000;
    // Harness iteration aid: NOC_MEASURE=<cycles> shortens runs.
    if (const char *env = std::getenv("NOC_MEASURE")) {
        const long v = std::atol(env);
        if (v > 0)
            w.measure = static_cast<Cycle>(v);
    }
    return w;
}

namespace {

/** One trace-cache slot: built exactly once, then immutable. std::map
 *  nodes never move, so references into `trace` stay valid forever. */
struct TraceCacheEntry
{
    std::once_flag once;
    std::vector<TraceRecord> trace;
};

} // namespace

const std::vector<TraceRecord> &
benchmarkTrace(const SimConfig &cfg, const BenchmarkProfile &b)
{
    static std::mutex cacheMutex;
    static std::map<std::string, TraceCacheEntry> cache;

    const auto topo = makeTopology(cfg);
    const std::string key =
        b.name + "@" + topo->name() + "#" + std::to_string(cfg.seed);
    TraceCacheEntry *entry;
    {
        const std::lock_guard<std::mutex> lock(cacheMutex);
        entry = &cache[key];
    }
    // Build outside the map lock so unrelated keys generate in parallel;
    // call_once makes concurrent requests for one key build-once.
    std::call_once(entry->once, [&] {
        const SimWindows w = traceWindows();
        entry->trace = generateCmpTrace(b, *topo, w.warmup + w.measure,
                                        /*seed=*/0xbe9c0u + cfg.seed);
    });
    return entry->trace;
}

SimResult
runBenchmark(const SimConfig &cfg, const BenchmarkProfile &b)
{
    auto source =
        std::make_unique<TraceReplaySource>(benchmarkTrace(cfg, b));
    return runSimulation(cfg, std::move(source), traceWindows());
}

SweepJob
benchmarkJob(const std::string &label, const SimConfig &cfg,
             const BenchmarkProfile &b)
{
    SweepJob job;
    job.label = label;
    job.cfg = cfg;
    job.windows = traceWindows();
    job.makeSource = [b](const SimConfig &c) {
        return std::make_unique<TraceReplaySource>(benchmarkTrace(c, b));
    };
    return job;
}

double
latencyReduction(const SimResult &baseline, const SimResult &other)
{
    if (baseline.avgNetLatency <= 0.0)
        return 0.0;
    return 1.0 - other.avgNetLatency / baseline.avgNetLatency;
}

const std::vector<Scheme> &
pseudoSchemes()
{
    static const std::vector<Scheme> schemes = {
        Scheme::Pseudo, Scheme::PseudoS, Scheme::PseudoB, Scheme::PseudoSB};
    return schemes;
}

void
printHeader(const std::string &label, const std::vector<std::string> &columns,
            int width)
{
    std::printf("%-16s", label.c_str());
    for (const std::string &c : columns)
        std::printf("%*s", width, c.c_str());
    std::printf("\n");
}

void
printRow(const std::string &label, const std::vector<double> &values,
         int width, int precision)
{
    std::printf("%-16s", label.c_str());
    for (const double v : values)
        std::printf("%*.*f", width, precision, v);
    std::printf("\n");
}

} // namespace noc
