/**
 * @file
 * Router energy model — the Orion substitute (paper §5, Table II).
 *
 * Per-event energies are calibrated to Table II's published breakdown of
 * baseline router energy at 45 nm: buffers 23.4%, crossbar 76.22%,
 * arbiters 0.24%, with a 6.38 pJ crossbar traversal. A baseline flit-hop
 * performs one buffer write, one buffer read, one crossbar traversal and
 * one arbitration, which yields the write/read/arbitration energies
 * below. Figures report *normalized* energy, so only these ratios (and
 * the event counts from the simulator) matter.
 */

#ifndef NOC_SIM_ENERGY_HPP
#define NOC_SIM_ENERGY_HPP

#include "router/router.hpp"

namespace noc {

struct EnergyParams
{
    double bufferWritePj = 0.98;  ///< per flit written
    double bufferReadPj = 0.98;   ///< per flit read out to the switch
    double crossbarPj = 6.38;     ///< per switch traversal (Table II)
    double arbiterPj = 0.0201;    ///< per VA/SA grant
};

struct EnergyBreakdown
{
    double bufferPj = 0.0;
    double crossbarPj = 0.0;
    double arbiterPj = 0.0;

    double totalPj() const { return bufferPj + crossbarPj + arbiterPj; }
};

/**
 * Energy consumed by the counted router events. Pseudo-circuit bypasses
 * save arbitration energy; buffer bypasses additionally save the buffer
 * write and read — which is where the measurable saving comes from,
 * since buffers are 23.4% of router energy and arbiters only 0.24%.
 */
EnergyBreakdown computeEnergy(const RouterStats &stats,
                              const EnergyParams &params = {});

} // namespace noc

#endif // NOC_SIM_ENERGY_HPP
