#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/log.hpp"
#include "profile/profile.hpp"
#include "sim/shard.hpp"

namespace noc {

int
resolveJobCount(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("NOC_JOBS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(int jobs) : jobs_(resolveJobCount(jobs)) {}

namespace {

bool
stopRequested(const std::atomic<bool> *stop)
{
    return stop != nullptr && stop->load(std::memory_order_relaxed);
}

SweepOutcome
attemptOneJob(const SweepJob &job, const std::atomic<bool> *stop,
              std::chrono::steady_clock::time_point runnerStart)
{
    SweepOutcome out;
    out.label = job.label;
    out.cfg = job.cfg;
    try {
        if (!job.makeSource)
            throw std::runtime_error("job has no traffic factory");
#if !NOC_VERIFY_ENABLED
        if (job.verify.enabled)
            throw std::runtime_error(
                "verify requested but the invariant checker was compiled "
                "out (reconfigure with -DNOC_VERIFY=ON)");
#endif
#if !NOC_PROFILE_ENABLED
        if (job.profile)
            throw std::runtime_error(
                "profile requested but the profiling layer was compiled "
                "out (reconfigure with -DNOC_PROFILE=ON)");
#endif
        // Compose the attempt's cancel predicate: the caller's stop
        // flag, the per-attempt deadline, then whatever the job itself
        // installed.
        SimWindows windows = job.windows;
        const auto started = std::chrono::steady_clock::now();
        const std::function<bool()> inner = windows.cancel;
        const std::int64_t deadline_ms = job.deadlineMs;
        windows.cancel = [stop, started, deadline_ms, inner] {
            if (stopRequested(stop))
                return true;
            if (deadline_ms > 0) {
                const auto elapsed =
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - started)
                        .count();
                if (elapsed > deadline_ms)
                    return true;
            }
            return inner && inner();
        };

        InvariantChecker checker(job.verify);
        auto runOne = [&](TelemetrySink *sink) {
            Simulator sim(job.cfg, job.makeSource(job.cfg));
            if (sink)
                sim.setTelemetry(sink);
            if (job.verify.enabled)
                sim.setVerifier(&checker);
            return sim.run(windows);
        };
        if (job.telemetry.enabled) {
            RingBufferCollector collector(job.telemetry);
            out.result = runOne(&collector);
            auto trace = std::make_shared<TelemetryTrace>();
            trace->label = job.label;
            trace->events = collector.events();
            trace->counters = collector.counters();
            out.trace = std::move(trace);
        } else {
            out.result = runOne(nullptr);
        }
        if (job.verify.enabled) {
            out.verifyChecks = checker.checks();
            out.verifyViolations = checker.violationCount();
            out.verifyReport = checker.report();
        }
        if (job.profile) {
            // Per-job timing ride-along: how long the attempt ran and
            // how long the job sat in the queue behind other jobs.
            const std::chrono::duration<double> wall =
                std::chrono::steady_clock::now() - started;
            const std::chrono::duration<double> queued =
                started - runnerStart;
            out.result.profile.active = true;
            out.result.profile.jobWallSeconds = wall.count();
            out.result.profile.jobQueueSeconds =
                queued.count() > 0.0 ? queued.count() : 0.0;
        }
        out.ok = true;
    } catch (const SimCancelled &e) {
        if (stopRequested(stop)) {
            out.interrupted = true;
            out.error = "interrupted";
        } else {
            out.error = "deadline of " + std::to_string(job.deadlineMs) +
                        "ms exceeded (" + e.what() + ")";
        }
    } catch (const std::exception &e) {
        out.error = e.what();
    } catch (...) {
        out.error = "unknown exception";
    }
    return out;
}

SweepOutcome
runOneJob(const SweepJob &job, const std::atomic<bool> *stop,
          std::chrono::steady_clock::time_point runnerStart)
{
    const int max_attempts = std::max(1, job.maxAttempts);
    SweepOutcome out;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        out = attemptOneJob(job, stop, runnerStart);
        out.attempts = attempt;
        if (out.ok || out.interrupted || attempt == max_attempts)
            break;
        // Linear backoff before the retry, abandoned promptly when the
        // stop flag fires mid-wait.
        std::int64_t wait_ms = job.backoffMs * attempt;
        while (wait_ms > 0 && !stopRequested(stop)) {
            const std::int64_t slice = std::min<std::int64_t>(wait_ms, 50);
            std::this_thread::sleep_for(std::chrono::milliseconds(slice));
            wait_ms -= slice;
        }
        if (stopRequested(stop)) {
            out.interrupted = true;
            out.error = "interrupted";
            break;
        }
    }
    return out;
}

} // namespace

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob> &jobs) const
{
    std::vector<SweepOutcome> outcomes(jobs.size());
    if (jobs.empty())
        return outcomes;

    // Progress and completion events fire in completion order,
    // serialized under one mutex so the observers never race with
    // themselves (the journal's append relies on this).
    std::mutex progress_mutex;
    std::size_t completed = 0;
    std::vector<char> ran(jobs.size(), 0);
    auto report = [&](std::size_t i, const SweepOutcome &out) {
        ran[i] = 1;
        if (!progress_ && !complete_)
            return;
        std::lock_guard<std::mutex> lock(progress_mutex);
        if (progress_) {
            SweepProgressEvent event;
            event.completed = ++completed;
            event.total = jobs.size();
            event.label = out.label;
            event.ok = out.ok;
            event.verdict = out.result.health.verdict;
            progress_(event);
        }
        if (complete_)
            complete_(i, out);
    };
    // Jobs never claimed (stop flag fired first) still need a labelled
    // outcome so the caller can tell "skipped" from "ran and failed".
    auto fillSkipped = [&] {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (ran[i])
                continue;
            outcomes[i].label = jobs[i].label;
            outcomes[i].cfg = jobs[i].cfg;
            outcomes[i].interrupted = true;
            outcomes[i].error = "interrupted";
        }
    };

    // Anchor for the profile annotation's queue time: a job's wait is
    // measured from here to the moment a worker claims it.
    const auto runner_start = std::chrono::steady_clock::now();

    // Compose the pool with intra-run sharding: a job that resolves to
    // N shard threads multiplies the run's footprint, so the pool
    // shrinks to keep jobs x shards within the hardware thread count
    // (tests/sim/shard_compose_test.cpp pins the rule).
    int max_shards = 1;
    for (const SweepJob &job : jobs)
        max_shards = std::max(max_shards, resolveShardCount(job.cfg));

    const int workers = composeWorkerCap(
        static_cast<int>(std::min<std::size_t>(
            jobs.size(), static_cast<std::size_t>(jobs_))),
        max_shards,
        static_cast<int>(std::thread::hardware_concurrency()));
    if (workers <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (stopRequested(stop_))
                break;
            outcomes[i] = runOneJob(jobs[i], stop_, runner_start);
            report(i, outcomes[i]);
        }
        fillSkipped();
        return outcomes;
    }

    // Workers claim the next unstarted index; each outcome lands at its
    // submission index, so ordering is independent of scheduling.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            if (stopRequested(stop_))
                return;
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            outcomes[i] = runOneJob(jobs[i], stop_, runner_start);
            report(i, outcomes[i]);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    fillSkipped();
    return outcomes;
}

std::vector<SweepOutcome>
runSweep(const std::vector<SweepJob> &jobs, int threads)
{
    return SweepRunner(threads).run(jobs);
}

void
writeOutcomes(ResultSink &sink, const std::vector<SweepOutcome> &outcomes)
{
    for (const SweepOutcome &o : outcomes) {
        if (o.ok) {
            sink.write(o.label, o.cfg, o.result);
            sink.writeSamples(o.label, o.result);
            sink.writeFlows(o.label, o.result);
            sink.writeWatchdog(o.label, o.result);
        } else {
            sink.writeFailure(o.label, o.cfg, o.error);
        }
    }
}

std::vector<TelemetryTrace>
collectTelemetry(const std::vector<SweepOutcome> &outcomes)
{
    std::vector<TelemetryTrace> traces;
    for (const SweepOutcome &o : outcomes) {
        if (o.trace)
            traces.push_back(*o.trace);
    }
    return traces;
}

SweepCli
parseSweepCli(int argc, char **argv)
{
    SweepCli cli;
    if (const char *env = std::getenv("NOC_RESULTS"))
        cli.jsonPath = env;

    auto valueOf = [&](int &i, const std::string &arg,
                       const std::string &name) -> std::string {
        if (arg.size() > name.size() && arg[name.size()] == '=')
            return arg.substr(name.size() + 1);
        if (i + 1 >= argc)
            NOC_FATAL(name + " requires a value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--jobs", 0) == 0) {
            const std::string v = valueOf(i, arg, "--jobs");
            const long n = std::atol(v.c_str());
            if (n <= 0)
                NOC_FATAL("--jobs must be a positive integer, got: " + v);
            cli.jobs = static_cast<int>(n);
        } else if (arg.rfind("--json", 0) == 0) {
            cli.jsonPath = valueOf(i, arg, "--json");
        } else if (arg.rfind("--csv", 0) == 0) {
            cli.csvPath = valueOf(i, arg, "--csv");
        } else if (arg == "--progress") {
            cli.progress = true;
        } else {
            NOC_FATAL(std::string(argv[0]) + ": unknown argument '" + arg +
                      "' (expected --jobs N, --json PATH, --csv PATH, "
                      "--progress)");
        }
    }
    return cli;
}

void
emitStructuredResults(const SweepCli &cli,
                      const std::vector<SweepOutcome> &outcomes)
{
    if (!cli.jsonPath.empty()) {
        if (cli.jsonPath == "-") {
            JsonLinesSink sink(std::cout);
            writeOutcomes(sink, outcomes);
        } else {
            std::ofstream os(cli.jsonPath, std::ios::app);
            if (!os)
                NOC_FATAL("cannot open json results file: " + cli.jsonPath);
            JsonLinesSink sink(os);
            writeOutcomes(sink, outcomes);
        }
    }
    if (!cli.csvPath.empty()) {
        std::ofstream os(cli.csvPath, std::ios::app);
        if (!os)
            NOC_FATAL("cannot open csv results file: " + cli.csvPath);
        CsvSink sink(os, /*header=*/os.tellp() == std::streampos(0));
        writeOutcomes(sink, outcomes);
    }
}

} // namespace noc
