#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/log.hpp"

namespace noc {

int
resolveJobCount(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("NOC_JOBS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(int jobs) : jobs_(resolveJobCount(jobs)) {}

namespace {

SweepOutcome
runOneJob(const SweepJob &job)
{
    SweepOutcome out;
    out.label = job.label;
    out.cfg = job.cfg;
    try {
        if (!job.makeSource)
            throw std::runtime_error("job has no traffic factory");
#if !NOC_VERIFY_ENABLED
        if (job.verify.enabled)
            throw std::runtime_error(
                "verify requested but the invariant checker was compiled "
                "out (reconfigure with -DNOC_VERIFY=ON)");
#endif
        InvariantChecker checker(job.verify);
        auto runOne = [&](TelemetrySink *sink) {
            Simulator sim(job.cfg, job.makeSource(job.cfg));
            if (sink)
                sim.setTelemetry(sink);
            if (job.verify.enabled)
                sim.setVerifier(&checker);
            return sim.run(job.windows);
        };
        if (job.telemetry.enabled) {
            RingBufferCollector collector(job.telemetry);
            out.result = runOne(&collector);
            auto trace = std::make_shared<TelemetryTrace>();
            trace->label = job.label;
            trace->events = collector.events();
            trace->counters = collector.counters();
            out.trace = std::move(trace);
        } else {
            out.result = runOne(nullptr);
        }
        if (job.verify.enabled) {
            out.verifyChecks = checker.checks();
            out.verifyViolations = checker.violationCount();
            out.verifyReport = checker.report();
        }
        out.ok = true;
    } catch (const std::exception &e) {
        out.error = e.what();
    } catch (...) {
        out.error = "unknown exception";
    }
    return out;
}

} // namespace

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob> &jobs) const
{
    std::vector<SweepOutcome> outcomes(jobs.size());
    if (jobs.empty())
        return outcomes;

    // Progress events fire in completion order, serialized under a
    // mutex so the observer never races with itself.
    std::mutex progress_mutex;
    std::size_t completed = 0;
    auto report = [&](const SweepOutcome &out) {
        if (!progress_)
            return;
        std::lock_guard<std::mutex> lock(progress_mutex);
        SweepProgressEvent event;
        event.completed = ++completed;
        event.total = jobs.size();
        event.label = out.label;
        event.ok = out.ok;
        event.verdict = out.result.health.verdict;
        progress_(event);
    };

    const int workers =
        static_cast<int>(std::min<std::size_t>(jobs.size(),
                                               static_cast<std::size_t>(jobs_)));
    if (workers <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            outcomes[i] = runOneJob(jobs[i]);
            report(outcomes[i]);
        }
        return outcomes;
    }

    // Workers claim the next unstarted index; each outcome lands at its
    // submission index, so ordering is independent of scheduling.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            outcomes[i] = runOneJob(jobs[i]);
            report(outcomes[i]);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return outcomes;
}

std::vector<SweepOutcome>
runSweep(const std::vector<SweepJob> &jobs, int threads)
{
    return SweepRunner(threads).run(jobs);
}

void
writeOutcomes(ResultSink &sink, const std::vector<SweepOutcome> &outcomes)
{
    for (const SweepOutcome &o : outcomes) {
        if (o.ok) {
            sink.write(o.label, o.cfg, o.result);
            sink.writeSamples(o.label, o.result);
            sink.writeFlows(o.label, o.result);
            sink.writeWatchdog(o.label, o.result);
        } else {
            sink.writeFailure(o.label, o.cfg, o.error);
        }
    }
}

std::vector<TelemetryTrace>
collectTelemetry(const std::vector<SweepOutcome> &outcomes)
{
    std::vector<TelemetryTrace> traces;
    for (const SweepOutcome &o : outcomes) {
        if (o.trace)
            traces.push_back(*o.trace);
    }
    return traces;
}

SweepCli
parseSweepCli(int argc, char **argv)
{
    SweepCli cli;
    if (const char *env = std::getenv("NOC_RESULTS"))
        cli.jsonPath = env;

    auto valueOf = [&](int &i, const std::string &arg,
                       const std::string &name) -> std::string {
        if (arg.size() > name.size() && arg[name.size()] == '=')
            return arg.substr(name.size() + 1);
        if (i + 1 >= argc)
            NOC_FATAL(name + " requires a value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--jobs", 0) == 0) {
            const std::string v = valueOf(i, arg, "--jobs");
            const long n = std::atol(v.c_str());
            if (n <= 0)
                NOC_FATAL("--jobs must be a positive integer, got: " + v);
            cli.jobs = static_cast<int>(n);
        } else if (arg.rfind("--json", 0) == 0) {
            cli.jsonPath = valueOf(i, arg, "--json");
        } else if (arg.rfind("--csv", 0) == 0) {
            cli.csvPath = valueOf(i, arg, "--csv");
        } else if (arg == "--progress") {
            cli.progress = true;
        } else {
            NOC_FATAL(std::string(argv[0]) + ": unknown argument '" + arg +
                      "' (expected --jobs N, --json PATH, --csv PATH, "
                      "--progress)");
        }
    }
    return cli;
}

void
emitStructuredResults(const SweepCli &cli,
                      const std::vector<SweepOutcome> &outcomes)
{
    if (!cli.jsonPath.empty()) {
        if (cli.jsonPath == "-") {
            JsonLinesSink sink(std::cout);
            writeOutcomes(sink, outcomes);
        } else {
            std::ofstream os(cli.jsonPath, std::ios::app);
            if (!os)
                NOC_FATAL("cannot open json results file: " + cli.jsonPath);
            JsonLinesSink sink(os);
            writeOutcomes(sink, outcomes);
        }
    }
    if (!cli.csvPath.empty()) {
        std::ofstream os(cli.csvPath, std::ios::app);
        if (!os)
            NOC_FATAL("cannot open csv results file: " + cli.csvPath);
        CsvSink sink(os, /*header=*/os.tellp() == std::streampos(0));
        writeOutcomes(sink, outcomes);
    }
}

} // namespace noc
