#include "sim/journal.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/log.hpp"

namespace noc {

namespace {

// ---------------------------------------------------------------- keys

std::uint64_t
fnv1a(std::uint64_t h, const std::string &s)
{
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    // Field separator, so {"ab","c"} and {"a","bc"} hash differently.
    h ^= 0x1f;
    h *= 1099511628211ull;
    return h;
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
fmtU64(std::uint64_t v)
{
    return std::to_string(v);
}

// ------------------------------------------------------- JSON plumbing

void
appendEscaped(std::string &out, const std::string &s)
{
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendField(std::string &out, const char *key, const std::string &value,
            bool first = false)
{
    if (!first)
        out += ',';
    out += '"';
    out += key;
    out += "\":\"";
    appendEscaped(out, value);
    out += '"';
}

void
appendArray(std::string &out, const char *key,
            const std::vector<std::string> &values)
{
    out += ",\"";
    out += key;
    out += "\":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0)
            out += ',';
        out += '"';
        appendEscaped(out, values[i]);
        out += '"';
    }
    out += ']';
}

/**
 * Minimal parser for the journal's own flat shape: an object whose
 * values are strings or arrays of strings. Not a general JSON parser —
 * just enough to read back what journalEntryToJson wrote.
 */
struct FlatJson
{
    std::map<std::string, std::string> strings;
    std::map<std::string, std::vector<std::string>> arrays;
};

bool
scanString(const std::string &s, std::size_t &i, std::string &out)
{
    if (i >= s.size() || s[i] != '"')
        return false;
    ++i;
    out.clear();
    while (i < s.size()) {
        const char c = s[i++];
        if (c == '"')
            return true;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (i >= s.size())
            return false;
        const char e = s[i++];
        switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
            if (i + 4 > s.size())
                return false;
            const unsigned code = static_cast<unsigned>(
                std::strtoul(s.substr(i, 4).c_str(), nullptr, 16));
            i += 4;
            // The writer only emits \u00xx for control bytes.
            out += static_cast<char>(code & 0xff);
            break;
        }
        default:
            return false;
        }
    }
    return false;
}

bool
parseFlat(const std::string &line, FlatJson &out)
{
    std::size_t i = 0;
    auto skipWs = [&] {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t' || line[i] == '\r'))
            ++i;
    };
    skipWs();
    if (i >= line.size() || line[i] != '{')
        return false;
    ++i;
    skipWs();
    if (i < line.size() && line[i] == '}')
        return true;
    for (;;) {
        skipWs();
        std::string key;
        if (!scanString(line, i, key))
            return false;
        skipWs();
        if (i >= line.size() || line[i] != ':')
            return false;
        ++i;
        skipWs();
        if (i < line.size() && line[i] == '[') {
            ++i;
            std::vector<std::string> items;
            skipWs();
            if (i < line.size() && line[i] == ']') {
                ++i;
            } else {
                for (;;) {
                    skipWs();
                    std::string item;
                    if (!scanString(line, i, item))
                        return false;
                    items.push_back(std::move(item));
                    skipWs();
                    if (i >= line.size())
                        return false;
                    if (line[i] == ']') {
                        ++i;
                        break;
                    }
                    if (line[i] != ',')
                        return false;
                    ++i;
                }
            }
            out.arrays[key] = std::move(items);
        } else {
            std::string value;
            if (!scanString(line, i, value))
                return false;
            out.strings[key] = std::move(value);
        }
        skipWs();
        if (i >= line.size())
            return false;
        if (line[i] == '}')
            return true;
        if (line[i] != ',')
            return false;
        ++i;
    }
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        if (nl > start)
            lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

} // namespace

std::uint64_t
journalKey(const SweepJob &job)
{
    std::uint64_t h = 14695981039346656037ull;
    h = fnv1a(h, job.label);
    h = fnv1a(h, job.cfg.describe());
    h = fnv1a(h, std::to_string(job.cfg.seed));
    // The fault and churn plans are deliberately excluded from
    // describe() (output byte-identity), so they are hashed explicitly.
    h = fnv1a(h, job.cfg.faultSpec);
    h = fnv1a(h, job.cfg.churnSpec);
    h = fnv1a(h, std::to_string(job.cfg.dropCreditEvery));
    h = fnv1a(h, std::to_string(job.windows.warmup));
    h = fnv1a(h, std::to_string(job.windows.measure));
    h = fnv1a(h, std::to_string(job.windows.drainLimit));
    return h;
}

JournalEntry
makeJournalEntry(const SweepJob &job, const SweepOutcome &out)
{
    JournalEntry e;
    e.key = journalKey(job);
    e.label = out.label;
    e.ok = out.ok;
    e.error = out.error;
    e.attempts = out.attempts;

    std::ostringstream js;
    {
        JsonLinesSink sink(js);
        if (out.ok) {
            sink.write(out.label, out.cfg, out.result);
            sink.writeSamples(out.label, out.result);
            sink.writeFlows(out.label, out.result);
            sink.writeWatchdog(out.label, out.result);
        } else {
            sink.writeFailure(out.label, out.cfg, out.error);
        }
    }
    e.jsonLines = splitLines(js.str());

    std::ostringstream cs;
    {
        CsvSink sink(cs, /*header=*/false);
        if (out.ok)
            sink.write(out.label, out.cfg, out.result);
        else
            sink.writeFailure(out.label, out.cfg, out.error);
    }
    e.csvRows = splitLines(cs.str());

    const SimResult &r = out.result;
    e.totalLat = fmtDouble(r.avgTotalLatency);
    e.netLat = fmtDouble(r.avgNetLatency);
    e.p99 = fmtDouble(r.p99TotalLatency);
    e.throughput = fmtDouble(r.throughput);
    e.reuse = fmtDouble(r.reusability);
    e.energy = fmtDouble(r.energy.totalPj());
    e.drained = r.drained;

    e.verdict = static_cast<int>(r.health.verdict);
    e.satReason = r.health.saturationReason;
    e.measureUsed = fmtU64(r.health.measureUsed);
    e.steadyCycle = fmtU64(r.health.steadyCycle);
    e.cov = fmtDouble(r.health.latencyCov);

    e.verifyChecks = fmtU64(out.verifyChecks);
    e.verifyViolations = fmtU64(out.verifyViolations);
    e.verifyReport = out.verifyReport;

    e.faultActive = r.fault.active;
    e.faultOffered = fmtU64(r.fault.packetsOffered);
    e.faultDelivered = fmtU64(r.fault.packetsDelivered);
    e.faultDropped = fmtU64(r.fault.packetsDropped);
    e.faultUnroutable = fmtU64(r.fault.packetsUnroutable);
    e.faultLinksKilled = fmtU64(r.fault.linksKilled);
    e.faultRetransmits = fmtU64(r.fault.flitsRetransmitted);
    e.faultOfferedTp = fmtDouble(r.fault.offeredThroughput);
    e.faultAchievedTp = fmtDouble(r.fault.achievedThroughput);
    return e;
}

SweepOutcome
outcomeFromEntry(const JournalEntry &e, const SweepJob &job)
{
    SweepOutcome o;
    o.label = e.label;
    o.cfg = job.cfg;
    o.ok = e.ok;
    o.error = e.error;
    o.attempts = e.attempts;

    SimResult &r = o.result;
    r.avgTotalLatency = std::strtod(e.totalLat.c_str(), nullptr);
    r.avgNetLatency = std::strtod(e.netLat.c_str(), nullptr);
    r.p99TotalLatency = std::strtod(e.p99.c_str(), nullptr);
    r.throughput = std::strtod(e.throughput.c_str(), nullptr);
    r.reusability = std::strtod(e.reuse.c_str(), nullptr);
    // Only totalPj() is replayed (the stdout table prints nothing
    // finer); park the stored total in one component.
    r.energy.bufferPj = std::strtod(e.energy.c_str(), nullptr);
    r.drained = e.drained;

    r.health.verdict = static_cast<RunVerdict>(e.verdict);
    r.health.saturationReason = e.satReason;
    r.health.measureUsed =
        static_cast<Cycle>(std::strtoull(e.measureUsed.c_str(), nullptr, 10));
    r.health.steadyCycle =
        static_cast<Cycle>(std::strtoull(e.steadyCycle.c_str(), nullptr, 10));
    r.health.latencyCov = std::strtod(e.cov.c_str(), nullptr);

    o.verifyChecks = std::strtoull(e.verifyChecks.c_str(), nullptr, 10);
    o.verifyViolations =
        std::strtoull(e.verifyViolations.c_str(), nullptr, 10);
    o.verifyReport = e.verifyReport;

    r.fault.active = e.faultActive;
    r.fault.packetsOffered =
        std::strtoull(e.faultOffered.c_str(), nullptr, 10);
    r.fault.packetsDelivered =
        std::strtoull(e.faultDelivered.c_str(), nullptr, 10);
    r.fault.packetsDropped =
        std::strtoull(e.faultDropped.c_str(), nullptr, 10);
    r.fault.packetsUnroutable =
        std::strtoull(e.faultUnroutable.c_str(), nullptr, 10);
    r.fault.linksKilled =
        std::strtoull(e.faultLinksKilled.c_str(), nullptr, 10);
    r.fault.flitsRetransmitted =
        std::strtoull(e.faultRetransmits.c_str(), nullptr, 10);
    r.fault.offeredThroughput =
        std::strtod(e.faultOfferedTp.c_str(), nullptr);
    r.fault.achievedThroughput =
        std::strtod(e.faultAchievedTp.c_str(), nullptr);
    return o;
}

std::string
journalEntryToJson(const JournalEntry &e)
{
    std::string out = "{";
    appendField(out, "key", fmtU64(e.key), /*first=*/true);
    appendField(out, "label", e.label);
    appendField(out, "ok", e.ok ? "1" : "0");
    appendField(out, "error", e.error);
    appendField(out, "attempts", std::to_string(e.attempts));
    appendArray(out, "json", e.jsonLines);
    appendArray(out, "csv", e.csvRows);
    appendField(out, "total_lat", e.totalLat);
    appendField(out, "net_lat", e.netLat);
    appendField(out, "p99", e.p99);
    appendField(out, "throughput", e.throughput);
    appendField(out, "reuse", e.reuse);
    appendField(out, "energy", e.energy);
    appendField(out, "drained", e.drained ? "1" : "0");
    appendField(out, "verdict", std::to_string(e.verdict));
    appendField(out, "sat_reason", e.satReason);
    appendField(out, "measure_used", e.measureUsed);
    appendField(out, "steady_cycle", e.steadyCycle);
    appendField(out, "cov", e.cov);
    appendField(out, "verify_checks", e.verifyChecks);
    appendField(out, "verify_violations", e.verifyViolations);
    appendField(out, "verify_report", e.verifyReport);
    appendField(out, "fault_active", e.faultActive ? "1" : "0");
    appendField(out, "fault_offered", e.faultOffered);
    appendField(out, "fault_delivered", e.faultDelivered);
    appendField(out, "fault_dropped", e.faultDropped);
    appendField(out, "fault_unroutable", e.faultUnroutable);
    appendField(out, "fault_links_killed", e.faultLinksKilled);
    appendField(out, "fault_retransmits", e.faultRetransmits);
    appendField(out, "fault_offered_tp", e.faultOfferedTp);
    appendField(out, "fault_achieved_tp", e.faultAchievedTp);
    out += '}';
    return out;
}

bool
parseJournalEntry(const std::string &line, JournalEntry &e)
{
    FlatJson flat;
    if (!parseFlat(line, flat))
        return false;
    auto str = [&](const char *key) -> const std::string & {
        static const std::string empty;
        const auto it = flat.strings.find(key);
        return it == flat.strings.end() ? empty : it->second;
    };
    if (flat.strings.find("key") == flat.strings.end())
        return false;
    e = JournalEntry();
    e.key = std::strtoull(str("key").c_str(), nullptr, 10);
    e.label = str("label");
    e.ok = str("ok") == "1";
    e.error = str("error");
    e.attempts = static_cast<int>(std::atol(str("attempts").c_str()));
    const auto json_it = flat.arrays.find("json");
    if (json_it != flat.arrays.end())
        e.jsonLines = json_it->second;
    const auto csv_it = flat.arrays.find("csv");
    if (csv_it != flat.arrays.end())
        e.csvRows = csv_it->second;
    e.totalLat = str("total_lat");
    e.netLat = str("net_lat");
    e.p99 = str("p99");
    e.throughput = str("throughput");
    e.reuse = str("reuse");
    e.energy = str("energy");
    e.drained = str("drained") == "1";
    e.verdict = static_cast<int>(std::atol(str("verdict").c_str()));
    e.satReason = str("sat_reason");
    e.measureUsed = str("measure_used");
    e.steadyCycle = str("steady_cycle");
    e.cov = str("cov");
    e.verifyChecks = str("verify_checks");
    e.verifyViolations = str("verify_violations");
    e.verifyReport = str("verify_report");
    e.faultActive = str("fault_active") == "1";
    e.faultOffered = str("fault_offered");
    e.faultDelivered = str("fault_delivered");
    e.faultDropped = str("fault_dropped");
    e.faultUnroutable = str("fault_unroutable");
    e.faultLinksKilled = str("fault_links_killed");
    e.faultRetransmits = str("fault_retransmits");
    e.faultOfferedTp = str("fault_offered_tp");
    e.faultAchievedTp = str("fault_achieved_tp");
    return true;
}

SweepJournal::SweepJournal(const std::string &path)
    : os_(path, std::ios::app)
{
    if (!os_)
        NOC_FATAL("cannot open sweep journal: " + path);
}

void
SweepJournal::append(const JournalEntry &entry)
{
    os_ << journalEntryToJson(entry) << '\n';
    os_.flush();
}

std::map<std::uint64_t, JournalEntry>
SweepJournal::load(const std::string &path)
{
    std::map<std::uint64_t, JournalEntry> entries;
    std::ifstream is(path);
    if (!is)
        return entries;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        JournalEntry e;
        // A kill can truncate the final line; anything unparseable is
        // simply a job the journal does not cover.
        if (parseJournalEntry(line, e))
            entries[e.key] = e;
    }
    return entries;
}

} // namespace noc
