#include "sim/locality.hpp"

#include <unordered_map>

#include "common/log.hpp"
#include "routing/routing.hpp"
#include "topology/topology.hpp"

namespace noc {

LocalityResult
analyzeLocality(const std::vector<TraceRecord> &trace, const Topology &topo,
                const RoutingAlgorithm &routing)
{
    LocalityResult result;
    std::unordered_map<NodeId, NodeId> last_dst;

    // last output port used per (router, input port).
    std::vector<std::vector<PortId>> last_out(topo.numRouters());
    for (RouterId r = 0; r < topo.numRouters(); ++r)
        last_out[r].assign(topo.numInputPorts(r), kInvalidPort);

    std::uint64_t e2e_hits = 0;
    std::uint64_t e2e_total = 0;
    std::uint64_t xbar_hits = 0;
    std::uint64_t xbar_total = 0;

    for (const TraceRecord &rec : trace) {
        const auto it = last_dst.find(rec.src);
        if (it != last_dst.end()) {
            ++e2e_total;
            if (it->second == rec.dst)
                ++e2e_hits;
        }
        last_dst[rec.src] = rec.dst;
        ++result.packets;

        // Walk the packet's path (routing class 0).
        RouterId router = topo.nodeRouter(rec.src);
        PortId in_port = topo.nodePort(rec.src);
        for (;;) {
            const RouteDecision d = routing.route(router, rec.dst, 0);
            ++xbar_total;
            ++result.hops;
            if (last_out[router][in_port] == d.outPort)
                ++xbar_hits;
            last_out[router][in_port] = d.outPort;

            const OutputChannel &chan = topo.output(router, d.outPort);
            if (chan.isTerminal()) {
                NOC_ASSERT(chan.terminal == rec.dst,
                           "route walked to the wrong terminal");
                break;
            }
            NOC_ASSERT(chan.isConnected(), "route into an unconnected port");
            const Drop &drop = chan.drops[d.drop];
            router = drop.router;
            in_port = drop.inPort;
        }
    }

    result.endToEnd = e2e_total == 0
        ? 0.0
        : static_cast<double>(e2e_hits) / static_cast<double>(e2e_total);
    result.crossbar = xbar_total == 0
        ? 0.0
        : static_cast<double>(xbar_hits) / static_cast<double>(xbar_total);
    return result;
}

} // namespace noc
