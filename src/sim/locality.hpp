/**
 * @file
 * Communication temporal-locality analysis (paper Fig 1).
 *
 * Two metrics over a packet trace:
 *  - end-to-end locality: fraction of packets whose (source, destination)
 *    pair repeats the previous packet injected by the same source;
 *  - crossbar-connection locality: fraction of per-router packet
 *    traversals whose (input port -> output port) connection repeats the
 *    previous connection used at that input port.
 * The second is computed by walking each packet's route through the
 * topology, so it is a property of the trace + routing alone,
 * independent of simulator timing (exactly how Fig 1 frames it).
 */

#ifndef NOC_SIM_LOCALITY_HPP
#define NOC_SIM_LOCALITY_HPP

#include <vector>

#include "traffic/trace.hpp"

namespace noc {

class Topology;
class RoutingAlgorithm;

struct LocalityResult
{
    double endToEnd = 0.0;
    double crossbar = 0.0;
    std::uint64_t packets = 0;
    std::uint64_t hops = 0;
};

LocalityResult analyzeLocality(const std::vector<TraceRecord> &trace,
                               const Topology &topo,
                               const RoutingAlgorithm &routing);

} // namespace noc

#endif // NOC_SIM_LOCALITY_HPP
