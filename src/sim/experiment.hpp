/**
 * @file
 * Experiment plumbing shared by the figure-reproduction harnesses in
 * bench/: canonical configurations, benchmark-trace caching (one trace
 * per benchmark+topology, replayed identically across schemes — the
 * paper's methodology), and small table-formatting helpers.
 */

#ifndef NOC_SIM_EXPERIMENT_HPP
#define NOC_SIM_EXPERIMENT_HPP

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "traffic/benchmarks.hpp"
#include "traffic/trace.hpp"

namespace noc {

/** The paper's trace platform: 4x4 concentrated mesh, 64 terminals. */
SimConfig traceConfig();

/** The synthetic platform: 8x8 mesh, XY + static VA (Fig 12). */
SimConfig syntheticConfig();

/** Default windows for trace-driven runs. */
SimWindows traceWindows();

/**
 * The cached CMP trace for (benchmark, topology of cfg, cfg.seed). The
 * trace spans warmup+measure cycles of the default windows.
 *
 * Thread-safety guarantee: safe to call concurrently from sweep worker
 * threads. Each distinct key is generated exactly once (concurrent
 * requests for the same key block until the first builder finishes) and
 * the returned reference is to an immutable, never-moved vector that
 * stays valid for the lifetime of the process — so every scheme, on
 * every thread, replays the identical packet stream.
 */
const std::vector<TraceRecord> &benchmarkTrace(const SimConfig &cfg,
                                               const BenchmarkProfile &b);

/** Run one benchmark trace under one configuration. */
SimResult runBenchmark(const SimConfig &cfg, const BenchmarkProfile &b);

/**
 * A SweepJob replaying benchmark `b` under `cfg` with the default trace
 * windows — the parallel counterpart of runBenchmark(). The factory
 * resolves the shared cached trace inside the worker thread.
 */
SweepJob benchmarkJob(const std::string &label, const SimConfig &cfg,
                      const BenchmarkProfile &b);

/** Latency reduction of `other` relative to `baseline` (positive=better,
 *  computed on network latency as in Figs 8/9). */
double latencyReduction(const SimResult &baseline, const SimResult &other);

/** All four pseudo-circuit scheme variants, in paper order. */
const std::vector<Scheme> &pseudoSchemes();

// --- tiny fixed-width table helpers for the harnesses ---
void printRow(const std::string &label, const std::vector<double> &values,
              int width = 12, int precision = 3);
void printHeader(const std::string &label,
                 const std::vector<std::string> &columns, int width = 12);

} // namespace noc

#endif // NOC_SIM_EXPERIMENT_HPP
