/**
 * @file
 * The simulation driver: warmup / measure / drain phasing, statistics
 * collection, and saturation detection.
 */

#ifndef NOC_SIM_SIMULATOR_HPP
#define NOC_SIM_SIMULATOR_HPP

#include <functional>
#include <memory>
#include <stdexcept>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "metrics/flow_matrix.hpp"
#include "metrics/run_health.hpp"
#include "network/network.hpp"
#include "sim/energy.hpp"
#include "telemetry/telemetry.hpp"
#include "traffic/traffic.hpp"
#include "verify/verify.hpp"

namespace noc {

/** Phase lengths and limits for one run. */
struct SimWindows
{
    Cycle warmup = 5000;
    Cycle measure = 20000;
    Cycle drainLimit = 100000;  ///< give up (saturated) past this
    /// Emit a SimSample every N cycles of the measurement window
    /// (0 = off). Useful for convergence/saturation inspection.
    Cycle sampleInterval = 0;
    /// Run-health monitoring (all off by default). With a monitor that
    /// needs the sample stream enabled but sampleInterval == 0, samples
    /// are taken every health.sampleEvery cycles instead.
    RunHealthConfig health;
    /// Cooperative cancellation: polled every few thousand cycles in
    /// every phase; returning true aborts the run by throwing
    /// SimCancelled. Used by the sweep layer's per-job deadline and the
    /// SIGINT/SIGTERM stop flag. Null (the default) costs nothing.
    std::function<bool()> cancel;
};

/**
 * Thrown out of Simulator::run when SimWindows::cancel fires. Derives
 * from std::runtime_error so generic catch sites (the sweep worker's
 * failure isolation) still produce a labelled outcome.
 */
struct SimCancelled : std::runtime_error
{
    explicit SimCancelled(const std::string &why) : std::runtime_error(why)
    {
    }
};

/** One time-series point over a sampling interval. */
struct SimSample
{
    Cycle cycle = 0;            ///< end of the interval
    std::uint64_t packets = 0;  ///< completions in the interval
    double avgLatency = 0.0;    ///< create->eject, this interval only
    double throughput = 0.0;    ///< flits/node/cycle, this interval
};

/**
 * How a result relates to the network-model layer (src/analytic/).
 * Inactive — and absent from every sink — for plain detailed runs, so
 * model-off output stays byte-identical to pre-model releases.
 */
struct ModelAnnotation
{
    bool active = false;
    /// "analytic": the numbers are model predictions, no simulation
    /// ran. "frontier": a cycle-accurate run a hybrid sweep selected;
    /// the predicted_* fields carry the model's screen of the point.
    std::string tag;
    double predictedNetLatency = 0.0;
    double predictedTotalLatency = 0.0;
    /// Frontier only: |predicted - measured| / measured net latency.
    double relErrorNet = 0.0;
    bool predictedSaturated = false;
};

/**
 * How a result relates to the phase-profiling layer (src/profile/).
 * Inactive — and absent from every sink — unless a profiler rode the
 * run, so profile-off output stays byte-identical to prior releases.
 */
struct ProfileAnnotation
{
    bool active = false;
    double jobWallSeconds = 0.0;    ///< wall time of this run/attempt
    double jobQueueSeconds = 0.0;   ///< sweep: claim delay behind other jobs
};

/** Everything one run produces. */
struct SimResult
{
    std::uint64_t measuredPackets = 0;
    double avgTotalLatency = 0.0;   ///< creation -> ejection
    double avgNetLatency = 0.0;     ///< injection -> ejection
    double p99TotalLatency = 0.0;
    double avgHops = 0.0;
    double throughput = 0.0;        ///< accepted flits / node / cycle

    /// Latency split by the paper's bimodal packet mix.
    double avgLatencyAddrPkts = 0.0;   ///< single-flit (address) packets
    double avgLatencyDataPkts = 0.0;   ///< multi-flit (data) packets

    /// Fraction of switch traversals that reused a pseudo-circuit
    /// (Fig 8b / Fig 10: "reusability").
    double reusability = 0.0;

    /// Time series (only when SimWindows::sampleInterval > 0).
    std::vector<SimSample> samples;

    /// Timing-independent trace locality is in sim/locality.hpp; these
    /// are the online equivalents measured during the run.
    double crossbarLocality = 0.0;
    double endToEndLocality = 0.0;

    EnergyBreakdown energy;
    RouterStats routerTotals;
    PseudoCircuitStats pcTotals;
    NiStats niTotals;

    /// Rolled-up telemetry event counts (all zero unless a sink was
    /// attached for the run; exact even when the collector drops).
    TelemetryCounters telemetry;

    /// Run-health record: verdict, steady-state cycle, saturation
    /// early-exit data, watchdog snapshots (verdict == None and
    /// everything empty unless SimWindows::health enabled monitors).
    RunHealth health;

    /// Per-flow (src -> dst) latency histograms over the measured
    /// packets (empty unless SimWindows::health.flows.enabled).
    FlowMatrix flows;

    /// Degradation report of the fault plan (active == false — and no
    /// output anywhere — for fault-free runs).
    FaultReport fault;

    /// Network-model provenance (active == false — and no output
    /// anywhere — for plain detailed runs).
    ModelAnnotation model;

    /// Self-profiling annotation (active == false — and no output
    /// anywhere — unless profiling was requested for the run).
    ProfileAnnotation profile;

    Cycle cyclesRun = 0;
    bool drained = false;           ///< all packets delivered in time

    /// Shard count the run actually executed with (1 = the serial
    /// path). Execution provenance like the kernel name: never
    /// serialized, so sharded output stays byte-identical to serial —
    /// parity tests read it to prove the partitioned path really ran.
    int shardsUsed = 1;
};

class Simulator
{
  public:
    Simulator(const SimConfig &cfg, std::unique_ptr<TrafficSource> source);

    /** Run warmup + measurement + drain; collect statistics. */
    SimResult run(const SimWindows &windows = {});

    /**
     * Attach a telemetry sink for the whole network before run();
     * rolled-up counters land in SimResult::telemetry. The caller owns
     * the sink and keeps it alive across run().
     */
    void setTelemetry(TelemetrySink *sink)
    {
        telem_ = sink;
        net_.setTelemetry(sink);
    }

    /**
     * Attach a runtime invariant checker before run(); the simulator
     * lets in-flight credits settle after the drain phase and runs the
     * checker's exhaustive drained audit. The caller owns the checker.
     * Alternatively, setting the NOC_VERIFY environment variable to an
     * invariant spec ("all", "credits,order", ...) makes every
     * Simulator attach its own fail-fast checker — the switch that lets
     * the whole test suite run under verification unchanged.
     */
    void setVerifier(InvariantChecker *chk)
    {
        verifier_ = chk;
        net_.setVerifier(chk);
    }

    /**
     * Attach a phase profiler before run(); phase costs accumulate in
     * the profiler across the whole run (read them back with
     * PhaseProfiler::report()). The caller owns the profiler. Fatal
     * when the profiling layer was compiled out (-DNOC_PROFILE=OFF).
     */
    void setProfiler(PhaseProfiler *prof)
    {
        prof_ = prof;
        net_.setProfiler(prof);
    }

    Network &network() { return net_; }
    TrafficSource &source() { return *source_; }

  private:
    void stepOnce(SimPhase phase);
    /** One delivered packet into the latency/throughput accumulators. */
    void accumulateCompletion(const CompletedPacket &p);
    /** Shared result-assembly tail of the serial and sharded paths. */
    SimResult assembleResult(const RouterStats &before, RunHealth &&health);
    /**
     * The partitioned run (sim/shard.hpp): same phases as run(), but
     * cycles advance in lookahead windows with one thread per shard.
     * Only taken for eligible runs — open-loop source, no faults, no
     * telemetry/profiler/health monitors, no samples — everything else
     * falls back to the serial loop. Bit-exact with the serial path.
     */
    SimResult runSharded(const SimWindows &windows, int num_shards);

    Network net_;
    std::unique_ptr<TrafficSource> source_;
    TelemetrySink *telem_ = nullptr;
    InvariantChecker *verifier_ = nullptr;
    PhaseProfiler *prof_ = nullptr;
    std::unique_ptr<InvariantChecker> envVerifier_;  ///< NOC_VERIFY=...
    std::vector<CompletedPacket> completedScratch_;

    StatAccumulator totalLatency_;
    StatAccumulator netLatency_;
    StatAccumulator hopCount_;
    StatAccumulator addrLatency_;
    StatAccumulator dataLatency_;
    StatAccumulator intervalLatency_;
    /// Like intervalLatency_ but over *all* completions (warmup packets
    /// included) — feeds adaptive-warmup convergence detection.
    StatAccumulator allPhaseInterval_;
    Histogram latencyHist_{1.0, 4096};
    std::uint64_t measuredFlits_ = 0;
    std::uint64_t intervalFlits_ = 0;
    std::vector<SimSample> samples_;
    FlowMatrix flows_;
    bool flowsEnabled_ = false;
};

/** Convenience: run one configuration with a traffic source factory;
 *  `telemetry` (optional, caller-owned) collects events for the run. */
SimResult runSimulation(const SimConfig &cfg,
                        std::unique_ptr<TrafficSource> source,
                        const SimWindows &windows = {},
                        TelemetrySink *telemetry = nullptr);

} // namespace noc

#endif // NOC_SIM_SIMULATOR_HPP
