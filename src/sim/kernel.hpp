/**
 * @file
 * Simulation-kernel resolution: which router core a configuration will
 * run on, answered without building a network.
 *
 * The router layer selects a kernel per router at construction
 * (router/kernels.hpp): a devirtualized FastPolicy instantiation when
 * the (scheme x routing x topology) point is covered and the config is
 * eligible, else the generic path. This facade replays that selection
 * for a SimConfig so tools can report (noctool, benches) or assert
 * (parity tests) the kernel choice before paying for a run.
 */

#ifndef NOC_SIM_KERNEL_HPP
#define NOC_SIM_KERNEL_HPP

#include <string>

#include "common/config.hpp"

namespace noc {

/** The kernel a configuration resolves to. */
struct KernelInfo
{
    /// Kernel display name: "generic", or "<routing>/<scheme>" for a
    /// specialized core (e.g. "mesh-dor/pseudo-sb").
    std::string name;
    /// True when a devirtualized specialized kernel was selected for
    /// every router of the topology.
    bool specialized = false;
};

/**
 * Resolve the kernel `cfg` will run on. Builds the topology and routing
 * objects (cheap — no routers, NIs, or buffers) and queries the kernel
 * factory exactly as Router's constructor does, including the fault
 * routing wrapper that disqualifies specialization. A topology whose
 * routers would not all select the same kernel reports generic, which
 * is also what such a network would effectively be benchmarked as.
 */
KernelInfo resolveKernel(const SimConfig &cfg);

} // namespace noc

#endif // NOC_SIM_KERNEL_HPP
