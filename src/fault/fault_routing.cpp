#include "fault/fault_routing.hpp"

namespace noc {

FaultRouting::FaultRouting(std::unique_ptr<RoutingAlgorithm> base,
                           const Topology &topo,
                           const FaultController *faults)
    : base_(std::move(base)), topo_(topo), faults_(faults)
{
}

RouteDecision
FaultRouting::route(RouterId r, NodeId dst, int cls) const
{
    const RouteDecision base = base_->route(r, dst, cls);
    if (!faults_->anyLinkDead())
        return base;
    const OutputChannel &chan = topo_.output(r, base.outPort);
    if (chan.isTerminal())
        return base;
    if (!faults_->linkDead(r, base.outPort, base.drop))
        return base;
    return detour(r, topo_.nodeRouter(dst), base);
}

RouteDecision
FaultRouting::detour(RouterId r, RouterId dst_router, RouteDecision base) const
{
    if (faults_->rerouteGeneration() != cachedGeneration_) {
        detours_.clear();
        cachedGeneration_ = faults_->rerouteGeneration();
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(r) << 32) |
                              static_cast<std::uint64_t>(dst_router);
    auto cached = detours_.find(key);
    if (cached != detours_.end())
        return cached->second;

    const int here = topo_.gridDistance(r, dst_router);
    RouteDecision minimal = base;
    RouteDecision misroute = base;
    bool have_minimal = false;
    bool have_misroute = false;
    for (PortId p = 0; p < topo_.numOutputPorts(r); ++p) {
        const OutputChannel &chan = topo_.output(r, p);
        if (chan.isTerminal())
            continue;
        for (std::size_t d = 0; d < chan.drops.size(); ++d) {
            const int di = static_cast<int>(d);
            if (faults_->linkDead(r, p, di))
                continue;
            const RouterId next = chan.drops[d].router;
            if (!faults_->reachable(next, dst_router))
                continue;
            if (!have_minimal && topo_.gridDistance(next, dst_router) < here) {
                minimal = {p, di};
                have_minimal = true;
            }
            if (!have_misroute) {
                misroute = {p, di};
                have_misroute = true;
            }
        }
        if (have_minimal)
            break;
    }
    const RouteDecision chosen =
        have_minimal ? minimal : (have_misroute ? misroute : base);
    detours_.emplace(key, chosen);
    return chosen;
}

int
FaultRouting::numClasses() const
{
    return base_->numClasses();
}

std::pair<VcId, int>
FaultRouting::vcRange(int cls, int num_vcs) const
{
    return base_->vcRange(cls, num_vcs);
}

std::pair<VcId, int>
FaultRouting::vcRangeAt(RouterId r, NodeId src, NodeId dst, int cls,
                        int num_vcs) const
{
    return base_->vcRangeAt(r, src, dst, cls, num_vcs);
}

std::string
FaultRouting::name() const
{
    return base_->name() + "+fault";
}

} // namespace noc
