#include "fault/fault_routing.hpp"

namespace noc {

FaultRouting::FaultRouting(std::unique_ptr<RoutingAlgorithm> base,
                           const Topology &topo,
                           const FaultController *faults)
    : base_(std::move(base)), topo_(topo), faults_(faults)
{
}

RouteDecision
FaultRouting::route(RouterId r, NodeId dst, int cls) const
{
    const RouteDecision base = base_->route(r, dst, cls);
    if (!faults_->anyUnavailable())
        return base;
    const OutputChannel &chan = topo_.output(r, base.outPort);
    if (chan.isTerminal())
        return base;
    // Detour only around *dead* links (kill-link): they lose flits. A
    // churn-down link keeps the base route — its retry buffer holds the
    // flits losslessly until revival, and bending packets off dimension
    // order for a transient outage would reintroduce deadlock turns.
    if (!faults_->linkDead(r, base.outPort, base.drop))
        return base;
    return detour(r, topo_.nodeRouter(dst), base);
}

RouteDecision
FaultRouting::detour(RouterId r, RouterId dst_router, RouteDecision base) const
{
    if (faults_->rerouteGeneration() != cachedGeneration_) {
        detours_.clear();
        cachedGeneration_ = faults_->rerouteGeneration();
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(r) << 32) |
                              static_cast<std::uint64_t>(dst_router);
    auto cached = detours_.find(key);
    if (cached != detours_.end())
        return cached->second;

    const int here = topo_.gridDistance(r, dst_router);
    RouteDecision minimal = base;
    RouteDecision misroute = base;
    bool have_minimal = false;
    bool have_misroute = false;
    for (PortId p = 0; p < topo_.numOutputPorts(r); ++p) {
        const OutputChannel &chan = topo_.output(r, p);
        if (chan.isTerminal())
            continue;
        for (std::size_t d = 0; d < chan.drops.size(); ++d) {
            const int di = static_cast<int>(d);
            if (faults_->linkUnavailable(r, p, di))
                continue;
            const RouterId next = chan.drops[d].router;
            if (!faults_->reachable(next, dst_router))
                continue;
            if (!have_minimal && topo_.gridDistance(next, dst_router) < here) {
                minimal = {p, di};
                have_minimal = true;
            }
            if (!have_misroute) {
                misroute = {p, di};
                have_misroute = true;
            }
        }
        if (have_minimal)
            break;
    }
    const RouteDecision chosen =
        have_minimal ? minimal : (have_misroute ? misroute : base);
    detours_.emplace(key, chosen);
    return chosen;
}

int
FaultRouting::numClasses() const
{
    return base_->numClasses();
}

std::pair<VcId, int>
FaultRouting::vcRange(int cls, int num_vcs) const
{
    return base_->vcRange(cls, num_vcs);
}

std::pair<VcId, int>
FaultRouting::vcRangeAt(RouterId r, NodeId src, NodeId dst, int cls,
                        int num_vcs) const
{
    return base_->vcRangeAt(r, src, dst, cls, num_vcs);
}

int
FaultRouting::chooseClass(RouterId r, NodeId dst, Rng &rng,
                          const int *vc_credits, int num_vcs) const
{
    // Must forward (not inherit the default): the base may be adaptive,
    // whose backlog-driven choice would otherwise be replaced by the
    // default's RNG draw.
    return base_->chooseClass(r, dst, rng, vc_credits, num_vcs);
}

std::string
FaultRouting::name() const
{
    return base_->name() + "+fault";
}

} // namespace noc
