/**
 * @file
 * Fault-aware routing fallback: a decorator over any RoutingAlgorithm
 * that detours lookahead decisions around *dead* links (kill-link,
 * permanent). Churn-down links are deliberately NOT detoured: they are
 * lossless — flits wait in the link's retry buffer and resume in order
 * at revival — so the base route stays valid, and keeping it avoids
 * the deadlock turns a transient detour would reintroduce.
 *
 * While every link is available, each call forwards to the base
 * algorithm untouched (one flag test), so behaviour — and output — is
 * identical to an unwrapped run. Afterwards, decisions whose output
 * link is dead are replaced by the best available alternative:
 *
 *   1. an available link making minimal progress (Manhattan distance to
 *      the destination router decreases) whose endpoint can still reach
 *      the destination over available links, lowest port number first;
 *   2. failing that, any available link whose endpoint can reach the
 *      destination (a misroute);
 *   3. failing that, the original decision — the dead link drops the
 *      flit (accounted in the degradation report).
 *
 * Detours ignore the base algorithm's turn restrictions, so a mesh
 * with dead links is no longer provably deadlock-free; kill-link is
 * therefore restricted to the deterministic DOR algorithms (xy|yx),
 * the fault layer waives the forward-progress probe, and runs end via
 * the drain limit instead of hanging. Decisions are memoised per
 * (router, destination) and invalidated on every availability
 * transition (rerouteGeneration bumps on link death, churn down, and
 * churn up alike), so detours always avoid currently-down links too.
 */

#ifndef NOC_FAULT_FAULT_ROUTING_HPP
#define NOC_FAULT_FAULT_ROUTING_HPP

#include <memory>
#include <unordered_map>

#include "fault/fault_controller.hpp"
#include "routing/routing.hpp"
#include "topology/topology.hpp"

namespace noc {

class FaultRouting : public RoutingAlgorithm
{
  public:
    FaultRouting(std::unique_ptr<RoutingAlgorithm> base,
                 const Topology &topo, const FaultController *faults);

    RouteDecision route(RouterId r, NodeId dst, int cls) const override;
    int numClasses() const override;
    std::pair<VcId, int> vcRange(int cls, int num_vcs) const override;
    std::pair<VcId, int> vcRangeAt(RouterId r, NodeId src, NodeId dst,
                                   int cls, int num_vcs) const override;
    int chooseClass(RouterId r, NodeId dst, Rng &rng,
                    const int *vc_credits, int num_vcs) const override;
    std::string name() const override;

  private:
    RouteDecision detour(RouterId current, RouterId dst_router,
                         RouteDecision base) const;

    std::unique_ptr<RoutingAlgorithm> base_;
    const Topology &topo_;
    const FaultController *faults_;

    mutable std::uint64_t cachedGeneration_ = 0;
    mutable std::unordered_map<std::uint64_t, RouteDecision> detours_;
};

} // namespace noc

#endif // NOC_FAULT_FAULT_ROUTING_HPP
