/**
 * @file
 * Fault-aware routing fallback: a decorator over any RoutingAlgorithm
 * that detours lookahead decisions around dead links.
 *
 * While no link has died, every call forwards to the base algorithm
 * untouched (one flag test), so behaviour — and output — is identical
 * to an unwrapped run. After a death, decisions whose output link is
 * dead are replaced by the best alive alternative:
 *
 *   1. an alive link making minimal progress (Manhattan distance to the
 *      destination router decreases) whose endpoint can still reach the
 *      destination over alive links, lowest port number first;
 *   2. failing that, any alive link whose endpoint can reach the
 *      destination (a misroute);
 *   3. failing that, the original dead decision — the network drops the
 *      flit at the dead link and accounts it in the degradation report.
 *
 * Detours ignore the base algorithm's turn restrictions, so a faulted
 * mesh is no longer provably deadlock-free; the fault layer waives the
 * forward-progress probe accordingly and runs end via the drain limit
 * instead of hanging. Decisions are memoised per (router, destination)
 * and invalidated whenever another link dies.
 */

#ifndef NOC_FAULT_FAULT_ROUTING_HPP
#define NOC_FAULT_FAULT_ROUTING_HPP

#include <memory>
#include <unordered_map>

#include "fault/fault_controller.hpp"
#include "routing/routing.hpp"
#include "topology/topology.hpp"

namespace noc {

class FaultRouting : public RoutingAlgorithm
{
  public:
    FaultRouting(std::unique_ptr<RoutingAlgorithm> base,
                 const Topology &topo, const FaultController *faults);

    RouteDecision route(RouterId r, NodeId dst, int cls) const override;
    int numClasses() const override;
    std::pair<VcId, int> vcRange(int cls, int num_vcs) const override;
    std::pair<VcId, int> vcRangeAt(RouterId r, NodeId src, NodeId dst,
                                   int cls, int num_vcs) const override;
    std::string name() const override;

  private:
    RouteDecision detour(RouterId current, RouterId dst_router,
                         RouteDecision base) const;

    std::unique_ptr<RoutingAlgorithm> base_;
    const Topology &topo_;
    const FaultController *faults_;

    mutable std::uint64_t cachedGeneration_ = 0;
    mutable std::unordered_map<std::uint64_t, RouteDecision> detours_;
};

} // namespace noc

#endif // NOC_FAULT_FAULT_ROUTING_HPP
