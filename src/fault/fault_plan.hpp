/**
 * @file
 * Deterministic fault plans: a small grammar describing which links
 * corrupt, which die, which routers stall, and how aggressively the
 * link-level retry protocol defends against it all.
 *
 * A plan is a comma-separated clause list parsed from the `fault=`
 * config key, e.g.
 *
 *   fault=flip-link:3>7@p0.001,kill-link:2>6@cycle5000,
 *         stall-router:4@2000..2200,drop-credit-every=50,
 *         retry-timeout=32,retry-limit=8
 *
 * Clauses:
 *   flip-link:<a>><b>@p<prob>      transient corruption: each flit placed
 *                                  on the a->b link flips with prob <prob>
 *   kill-link:<a>><b>@cycle<C>     permanent failure: from cycle C every
 *                                  transmission on a->b corrupts, so the
 *                                  sender's bounded retries exhaust and
 *                                  the link is declared dead
 *   stall-router:<r>@<f>..<t>      router r freezes for cycles [f, t]
 *   drop-credit-every=<N>          every Nth credit delivered to any
 *                                  router is silently dropped (absorbs
 *                                  the PR 4 `dropCreditEvery` hook)
 *   retry-timeout=<N>              cycles before an unacknowledged link
 *                                  transmission is resent (0 = derive
 *                                  from link/credit latencies)
 *   retry-limit=<N>                consecutive failed retransmission
 *                                  rounds before a link is declared dead
 *
 * Parsing is pure (no topology access); clause targets are resolved and
 * validated against the concrete topology by the FaultController.
 *
 * Conflicting duplicates are parse errors rather than silent merges:
 * two flip-link clauses on one link, two kill-link events for the same
 * (cycle, link), or overlapping stall windows on one router all reject
 * the whole plan with a one-line message naming the clash.
 */

#ifndef NOC_FAULT_FAULT_PLAN_HPP
#define NOC_FAULT_FAULT_PLAN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace noc {

/** Transient corruption on one directed router->router link. */
struct FlipLinkClause
{
    RouterId src = kInvalidRouter;
    RouterId dst = kInvalidRouter;
    double prob = 0.0;
};

/** Permanent failure of one directed router->router link. */
struct KillLinkClause
{
    RouterId src = kInvalidRouter;
    RouterId dst = kInvalidRouter;
    Cycle atCycle = 0;
};

/** A router frozen over an inclusive cycle window. */
struct StallRouterClause
{
    RouterId router = kInvalidRouter;
    Cycle from = 0;
    Cycle to = 0;
};

/**
 * A parsed fault plan. Value-semantic and cheap to copy; the runtime
 * state machine lives in FaultController.
 */
struct FaultPlan
{
    std::vector<FlipLinkClause> flips;
    std::vector<KillLinkClause> kills;
    std::vector<StallRouterClause> stalls;
    std::uint64_t dropCreditEvery = 0;
    Cycle retryTimeout = 0;   ///< 0 = derive from latencies at bind time
    int retryLimit = 8;

    /** True when no clause was given (controller not needed). */
    bool empty() const
    {
        return flips.empty() && kills.empty() && stalls.empty() &&
               dropCreditEvery == 0;
    }

    /** Any clause that protects links with the retry protocol? */
    bool hasLinkClauses() const { return !flips.empty() || !kills.empty(); }

    /**
     * Parse a clause list. On a syntax error: if `error` is non-null it
     * receives a one-line message and an empty plan is returned;
     * otherwise the error is fatal.
     */
    static FaultPlan parse(const std::string &spec,
                           std::string *error = nullptr);
};

} // namespace noc

#endif // NOC_FAULT_FAULT_PLAN_HPP
