#include "fault/fault_controller.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "verify/verify.hpp"

namespace noc {

FaultController::FaultController(const FaultPlan &plan, const ChurnPlan &churn,
                                 const SimConfig &cfg, const Topology &topo)
    : plan_(plan), topo_(topo), linkLatency_(cfg.linkLatency),
      creditLatency_(cfg.creditLatency),
      retryTimeout_(plan.retryTimeout > 0
                        ? plan.retryTimeout
                        : 4 * static_cast<Cycle>(cfg.linkLatency +
                                                 cfg.creditLatency) +
                              8),
      // Distinct stream from traffic generation: a fault plan must not
      // perturb which packets the workload produces.
      rng_(cfg.seed * 9157 + 311),
      // A third stream for random churn: the same seed replays the same
      // availability schedule regardless of corruption rolls.
      churnRng_(cfg.seed * 7919 + 1543)
{
    if (cfg.scheme == Scheme::Evc &&
        (plan_.hasLinkClauses() || !plan_.stalls.empty()))
        NOC_FATAL("fault plan: link/stall clauses are not supported with "
                  "scheme=evc (express bypass has no link-retry path)");
    if (cfg.scheme == Scheme::Evc && !churn.empty())
        NOC_FATAL("churn plan: topology churn is not supported with "
                  "scheme=evc (express bypass has no link-retry path)");
    const bool grid_routing = cfg.routing == RoutingKind::XY ||
                              cfg.routing == RoutingKind::YX ||
                              cfg.routing == RoutingKind::Adaptive;
    if (!plan_.kills.empty()) {
        if (cfg.topology != TopologyKind::Mesh &&
            cfg.topology != TopologyKind::CMesh)
            NOC_FATAL("fault plan: kill-link requires topology=mesh|cmesh "
                      "(rerouting fallback assumes a grid)");
        // Detours bend a packet off its dimension order, which is only
        // provably deadlock-free when every packet in a VC partition
        // follows one deterministic DOR function. Adaptive's two
        // partitions are each DOR, but a detour inside one reintroduces
        // the forbidden turns — so kills stay DOR-only while churn
        // (which waits outages out instead of detouring) composes with
        // adaptive below.
        if (cfg.routing != RoutingKind::XY && cfg.routing != RoutingKind::YX)
            NOC_FATAL("fault plan: kill-link requires routing=xy|yx");
    }
    if (churn.hasLinkClauses()) {
        if (cfg.topology != TopologyKind::Mesh &&
            cfg.topology != TopologyKind::CMesh)
            NOC_FATAL("churn plan: link churn requires topology=mesh|cmesh "
                      "(availability-aware rerouting assumes a grid)");
        if (!grid_routing)
            NOC_FATAL("churn plan: link churn requires "
                      "routing=xy|yx|adaptive");
    }

    for (const FlipLinkClause &c : plan_.flips) {
        LinkState &ls = linkFor(c.src, c.dst, "flip-link");
        ls.flipProb = std::max(ls.flipProb, c.prob);
    }
    for (const KillLinkClause &c : plan_.kills) {
        LinkState &ls = linkFor(c.src, c.dst, "kill-link");
        ls.killAt = std::min(ls.killAt, c.atCycle);
    }
    for (const StallRouterClause &c : plan_.stalls) {
        if (c.router < 0 || c.router >= topo_.numRouters())
            NOC_FATAL("fault plan: stall-router target " +
                      std::to_string(c.router) + " out of range");
        stalls_.push_back(c);
    }

    // ------------------------------------------------------------------
    // Churn clause resolution. Registering a link via linkFor makes it
    // *protected*, which is output-transparent while nothing fires: an
    // uncontended protected transmission departs at now+1 exactly like
    // an unprotected one, and its ACK events are inert bookkeeping.
    // ------------------------------------------------------------------
    for (const ChurnPeriodClause &c : churn.periods) {
        LinkState &ls = linkFor(c.src, c.dst, "churn period");
        LinkGen g;
        g.link = static_cast<int>(&ls - links_.data());
        g.upDur = c.up;
        g.downDur = c.down;
        g.nextDownAt = c.phase + c.up;
        linkGens_.push_back(g);
    }
    for (const ChurnWindowClause &c : churn.windows) {
        LinkState &ls = linkFor(c.src, c.dst, "churn window");
        WindowGen w;
        w.link = static_cast<int>(&ls - links_.data());
        w.from = c.from;
        w.to = c.to;
        windowGens_.push_back(w);
    }
    for (const RouterPeriodClause &c : churn.routerPeriods) {
        if (c.router < 0 || c.router >= topo_.numRouters())
            NOC_FATAL("churn plan: router-period target " +
                      std::to_string(c.router) + " out of range");
        RouterGen g;
        g.router = c.router;
        g.upDur = c.up;
        g.downDur = c.down;
        g.nextDownAt = c.phase + c.up;
        routerGens_.push_back(g);
    }
    for (const RandomChurnClause &c : churn.randoms) {
        // Canonical enumeration of every router->router link, then N
        // distinct picks from the dedicated stream (linear probe on
        // collision): the same seed always churns the same links.
        std::vector<std::pair<RouterId, RouterId>> candidates;
        for (RouterId r = 0; r < topo_.numRouters(); ++r) {
            for (PortId p = 0; p < topo_.numOutputPorts(r); ++p) {
                const OutputChannel &chan = topo_.output(r, p);
                if (chan.isTerminal())
                    continue;
                for (const auto &drop : chan.drops)
                    candidates.emplace_back(r, drop.router);
            }
        }
        if (candidates.empty())
            NOC_FATAL("churn plan: random churn needs router-to-router "
                      "links in the topology");
        const std::size_t want =
            std::min<std::size_t>(static_cast<std::size_t>(c.links),
                                  candidates.size());
        std::vector<char> used(candidates.size(), 0);
        for (std::size_t k = 0; k < want; ++k) {
            std::size_t i = static_cast<std::size_t>(
                churnRng_.nextBelow(candidates.size()));
            while (used[i])
                i = (i + 1) % candidates.size();
            used[i] = 1;
            LinkState &ls = linkFor(candidates[i].first,
                                    candidates[i].second, "churn random");
            LinkGen g;
            g.link = static_cast<int>(&ls - links_.data());
            g.mttf = c.mttf;
            g.mttr = c.mttr;
            g.nextDownAt = 1 + churnRng_.nextBelow(2 * c.mttf - 1);
            linkGens_.push_back(g);
        }
    }
    traceEvents_ = churn.traceEvents;
    for (const ChurnTraceEvent &e : traceEvents_) {
        if (e.isRouter) {
            if (e.src < 0 || e.src >= topo_.numRouters())
                NOC_FATAL("churn plan: trace router " +
                          std::to_string(e.src) + " out of range");
            churnRouters_ = true;
        } else {
            LinkState &ls = linkFor(e.src, e.dst, "churn trace");
            churnLinks_.push_back(static_cast<int>(&ls - links_.data()));
        }
    }
    churnRouters_ = churnRouters_ || !routerGens_.empty();
    for (const LinkGen &g : linkGens_)
        churnLinks_.push_back(g.link);
    for (const WindowGen &w : windowGens_)
        churnLinks_.push_back(w.link);
    std::sort(churnLinks_.begin(), churnLinks_.end());
    churnLinks_.erase(std::unique(churnLinks_.begin(), churnLinks_.end()),
                      churnLinks_.end());
    churnLinkClauses_ = !churnLinks_.empty();

    creditCounters_.assign(static_cast<std::size_t>(topo_.numRouters()), 0);
    report_.active = true;
    report_.churn = !churn.empty();
}

FaultController::LinkState &
FaultController::linkFor(const RouterId src, const RouterId dst,
                         const char *clause)
{
    if (src < 0 || src >= topo_.numRouters() || dst < 0 ||
        dst >= topo_.numRouters())
        NOC_FATAL(std::string("fault plan: ") + clause + " router pair " +
                  std::to_string(src) + ">" + std::to_string(dst) +
                  " out of range");
    // Resolve the first (outPort, drop) on `src` that reaches `dst`.
    for (PortId p = 0; p < topo_.numOutputPorts(src); ++p) {
        const OutputChannel &chan = topo_.output(src, p);
        if (chan.isTerminal())
            continue;
        for (std::size_t d = 0; d < chan.drops.size(); ++d) {
            if (chan.drops[d].router != dst)
                continue;
            const std::uint64_t key =
                senderKey(src, p, static_cast<int>(d));
            auto it = senderIdx_.find(key);
            if (it != senderIdx_.end())
                return links_[it->second];
            LinkState ls;
            ls.src = src;
            ls.dst = dst;
            ls.outPort = p;
            ls.dropIdx = static_cast<int>(d);
            ls.inPort = chan.drops[d].inPort;
            ls.distance = chan.drops[d].distance;
            links_.push_back(ls);
            const int idx = static_cast<int>(links_.size()) - 1;
            senderIdx_[key] = idx;
            receiverIdx_[receiverKey(dst, ls.inPort)] = idx;
            return links_[idx];
        }
    }
    NOC_FATAL(std::string("fault plan: ") + clause + " names " +
              std::to_string(src) + ">" + std::to_string(dst) +
              " but the topology has no such link");
}

void
FaultController::bindVerifier(InvariantChecker *chk)
{
    chk_ = chk;
    if (!chk_)
        return;
    // Stall windows legitimately freeze forward progress; tell the
    // deadlock probe up front. Dead-link waivers install as links die.
    Cycle lastStallEnd = 0;
    for (const StallRouterClause &c : stalls_)
        lastStallEnd = std::max(lastStallEnd, c.to);
    if (lastStallEnd > 0)
        chk_->waiveProgressUntil(lastStallEnd);
    for (const LinkState &ls : links_) {
        if (ls.dead) {
            chk_->waiveLink(ls.src, ls.outPort, ls.dropIdx);
            chk_->waiveProgressUntil(kNeverCycle);
        }
        // Down links leak no credits (flits wait in the retry buffer),
        // so only the progress probe is waived — until the revival
        // drains, or forever when no revival is scheduled.
        if (ls.down) {
            chk_->waiveProgressUntil(ls.upAt == kNeverCycle
                                         ? kNeverCycle
                                         : ls.upAt + retryTimeout_);
        }
    }
}

// ----------------------------------------------------------------------
// Stalls.
// ----------------------------------------------------------------------

bool
FaultController::routerStalled(RouterId r, Cycle now) const
{
    for (const StallRouterClause &c : stalls_) {
        if (c.router == r && now >= c.from && now <= c.to)
            return true;
    }
    return false;
}

void
FaultController::beginCycle(Cycle now)
{
    // Churn first so a window appended this cycle is counted below and
    // a revival this cycle escapes the retry-timeout scan cleanly.
    if (report_.churn)
        stepChurn(now);
    for (const StallRouterClause &c : stalls_) {
        if (now >= c.from && now <= c.to)
            ++report_.stallCycles;
    }
    for (LinkState &ls : links_) {
        if (ls.dead || ls.down || ls.retryBuf.empty())
            continue;
        if (now >= ls.retryBuf.front().sentAt + retryTimeout_)
            resendWindow(ls, now, /*fromTimeout=*/true);
    }
}

// ----------------------------------------------------------------------
// Churn engine.
// ----------------------------------------------------------------------

void
FaultController::stepChurn(Cycle now)
{
    // Revivals before new outages: a link whose down window ends the
    // same cycle another clause re-downs it transitions cleanly (one up
    // event, one down event) instead of merging.
    for (const int idx : churnLinks_) {
        LinkState &ls = links_[static_cast<std::size_t>(idx)];
        if (ls.down && now >= ls.upAt)
            linkChurnUp(ls, now);
    }
    for (auto it = routerUpAt_.begin(); it != routerUpAt_.end();) {
        if (*it <= now) {
            ++report_.routerUpEvents;
            it = routerUpAt_.erase(it);
        } else {
            ++it;
        }
    }

    for (WindowGen &w : windowGens_) {
        if (!w.fired && now >= w.from) {
            w.fired = true;
            linkChurnDown(links_[static_cast<std::size_t>(w.link)], now,
                          w.to + 1);
        }
    }
    for (LinkGen &g : linkGens_) {
        if (now < g.nextDownAt)
            continue;
        Cycle down_dur;
        Cycle next_up;
        if (g.mttf > 0) {
            down_dur = 1 + churnRng_.nextBelow(2 * g.mttr - 1);
            next_up = 1 + churnRng_.nextBelow(2 * g.mttf - 1);
        } else {
            down_dur = g.downDur;
            next_up = g.upDur;
        }
        linkChurnDown(links_[static_cast<std::size_t>(g.link)], now,
                      now + down_dur);
        g.nextDownAt = now + down_dur + next_up;
    }
    for (RouterGen &g : routerGens_) {
        if (now < g.nextDownAt)
            continue;
        routerChurnDown(g.router, now, now + g.downDur);
        g.nextDownAt = now + g.downDur + g.upDur;
    }

    const auto link_index = [&](RouterId src, RouterId dst) {
        for (std::size_t i = 0; i < links_.size(); ++i) {
            if (links_[i].src == src && links_[i].dst == dst)
                return static_cast<int>(i);
        }
        return -1;
    };
    while (traceCursor_ < traceEvents_.size() &&
           traceEvents_[traceCursor_].cycle <= now) {
        const ChurnTraceEvent &e = traceEvents_[traceCursor_];
        if (e.isRouter) {
            // The matching up event (consumed via routerUpAt_ when its
            // cycle arrives) sizes the stall window; no up in the trace
            // means the router never comes back.
            if (!e.up) {
                Cycle up_cycle = kNeverCycle;
                for (std::size_t j = traceCursor_ + 1;
                     j < traceEvents_.size(); ++j) {
                    const ChurnTraceEvent &f = traceEvents_[j];
                    if (f.isRouter && f.src == e.src && f.up) {
                        up_cycle = f.cycle;
                        break;
                    }
                }
                routerChurnDown(e.src, now, up_cycle);
            }
        } else {
            const int idx = link_index(e.src, e.dst);
            NOC_ASSERT(idx >= 0, "churn trace link not registered");
            LinkState &ls = links_[static_cast<std::size_t>(idx)];
            if (!e.up) {
                Cycle up_at = kNeverCycle;
                for (std::size_t j = traceCursor_ + 1;
                     j < traceEvents_.size(); ++j) {
                    const ChurnTraceEvent &f = traceEvents_[j];
                    if (!f.isRouter && f.src == e.src && f.dst == e.dst &&
                        f.up) {
                        up_at = f.cycle;
                        break;
                    }
                }
                linkChurnDown(ls, now, up_at);
            } else {
                // Usually already revived by the scan above (the down
                // event recorded this cycle as upAt); a lone up event
                // is a no-op.
                linkChurnUp(ls, now);
            }
        }
        ++traceCursor_;
    }
}

void
FaultController::linkChurnDown(LinkState &ls, Cycle now, Cycle upAt)
{
    if (ls.dead)
        return;   // permanently dead outranks churn
    if (ls.down) {
        // Overlapping outages merge: extend to the later revival.
        const Cycle merged = std::max(ls.upAt, upAt);
        if (merged != ls.upAt) {
            if (ls.upAt != kNeverCycle && merged == kNeverCycle)
                --downWithRevival_;
            ls.upAt = merged;
            if (chk_)
                chk_->waiveProgressUntil(merged == kNeverCycle
                                             ? kNeverCycle
                                             : merged + retryTimeout_);
        }
        return;
    }
    ls.down = true;
    ls.upAt = upAt;
    ++downLinks_;
    ++report_.linkDownEvents;
    if (upAt != kNeverCycle)
        ++downWithRevival_;
    // Epoch boundary: invalidate route memos, recompute reachability
    // over available links, flush pseudo-circuits at both endpoints.
    ++generation_;
    reachDirty_ = true;
    queueTeardowns(ls);
    if (chk_) {
        // Nothing is dropped and no credit leaks — only forward
        // progress legitimately pauses, until the post-revival resend
        // settles (or forever when no revival is scheduled).
        chk_->waiveProgressUntil(upAt == kNeverCycle
                                     ? kNeverCycle
                                     : upAt + retryTimeout_);
    }
    (void)now;
}

void
FaultController::linkChurnUp(LinkState &ls, Cycle now)
{
    if (!ls.down)
        return;
    ls.down = false;
    if (ls.upAt != kNeverCycle)
        --downWithRevival_;
    ls.upAt = kNeverCycle;
    --downLinks_;
    ++report_.linkUpEvents;
    ++generation_;
    reachDirty_ = true;
    queueTeardowns(ls);
    // The outage was no fault of the protocol: deferred flits resume in
    // sequence order with a fresh retry budget.
    ls.retryCount = 0;
    if (!ls.retryBuf.empty())
        resumeLink(ls, now);
}

void
FaultController::resumeLink(LinkState &ls, Cycle now)
{
    for (RetryEntry &entry : ls.retryBuf) {
        transmit(ls, entry, now);
        ++report_.flitsResumed;
    }
}

void
FaultController::queueTeardowns(const LinkState &ls)
{
    // Cached routes at either endpoint may predate the transition; the
    // retransmitted / re-routed stream rebuilds circuits through the
    // normal allocation path.
    for (const RouterId r : {ls.src, ls.dst}) {
        for (PortId p = 0; p < topo_.numInputPorts(r); ++p)
            pendingTeardowns_.push_back({r, p});
    }
}

void
FaultController::routerChurnDown(RouterId r, Cycle now, Cycle upCycle)
{
    StallRouterClause c;
    c.router = r;
    c.from = now;
    c.to = upCycle == kNeverCycle ? kNeverCycle : upCycle - 1;
    stalls_.push_back(c);
    ++report_.routerDownEvents;
    if (upCycle != kNeverCycle)
        routerUpAt_.push_back(upCycle);
    if (chk_)
        chk_->waiveProgressUntil(c.to);
}

bool
FaultController::takeTeardowns(std::vector<TeardownRequest> &out)
{
    if (pendingTeardowns_.empty())
        return false;
    out.clear();
    out.swap(pendingTeardowns_);
    return true;
}

bool
FaultController::revivalPending(Cycle now) const
{
    if (downWithRevival_ > 0)
        return true;
    for (const StallRouterClause &c : stalls_) {
        if (c.to != kNeverCycle && now >= c.from && now <= c.to)
            return true;
    }
    return false;
}

bool
FaultController::captureArrival(const LinkEvent &ev, Cycle now)
{
    if (ev.kind == LinkEvent::Kind::CreditToRouter) {
        if (!routerStalled(ev.router, now))
            return false;
        heldCredits_[ev.router].push_back(ev);
        return true;
    }
    if (ev.kind != LinkEvent::Kind::FlitToRouter)
        return false;
    const auto key = std::make_pair(ev.router, ev.inPort);
    const bool backlog = [&] {
        auto it = heldFlits_.find(key);
        if (it != heldFlits_.end() && !it->second.empty())
            return true;
        auto rel = lastFlitRelease_.find(key);
        return rel != lastFlitRelease_.end() && rel->second == now;
    }();
    if (!routerStalled(ev.router, now) && !backlog)
        return false;
    heldFlits_[key].push_back(ev);
    return true;
}

void
FaultController::drainStallQueues(Cycle now, std::vector<LinkEvent> &out)
{
    for (auto &[router, credits] : heldCredits_) {
        if (credits.empty() || routerStalled(router, now))
            continue;
        out.insert(out.end(), credits.begin(), credits.end());
        credits.clear();
    }
    // One flit per port per cycle: the wire re-serialises its backlog.
    for (auto &[key, flits] : heldFlits_) {
        if (flits.empty() || routerStalled(key.first, now))
            continue;
        out.push_back(flits.front());
        flits.pop_front();
        lastFlitRelease_[key] = now;
    }
}

// ----------------------------------------------------------------------
// Protected links: sender.
// ----------------------------------------------------------------------

bool
FaultController::handleSend(RouterId r, PortId outPort, int dropIdx,
                            const Flit &flit, Cycle now)
{
    auto it = senderIdx_.find(senderKey(r, outPort, dropIdx));
    if (it == senderIdx_.end())
        return false;
    LinkState &ls = links_[it->second];
    if (ls.dead) {
        recordDropped(flit);
        return true;
    }
    RetryEntry entry;
    entry.flit = flit;
    entry.flit.linkSeq = ls.nextSeq++;
    transmit(ls, entry, now);
    ls.retryBuf.push_back(entry);
    NOC_ASSERT(ls.retryBuf.size() < 4096,
               "link retry buffer runaway (ACKs not draining?)");
    return true;
}

void
FaultController::transmit(LinkState &ls, RetryEntry &entry, Cycle now)
{
    // A down link is unplugged: nothing reaches the wire. The entry
    // waits in the retry buffer (bounded by the credit window) and
    // resumeLink() puts it on the wire at revival.
    if (ls.down) {
        entry.sentAt = now;
        ++report_.flitsDeferred;
        return;
    }
    // The wire carries one flit per cycle: serialise departures so a
    // retransmission burst cannot land two flits on one input port in
    // the same cycle.
    const Cycle depart = std::max(now + 1, ls.nextFreeTx);
    ls.nextFreeTx = depart + 1;
    entry.sentAt = depart;

    Flit onWire = entry.flit;
    onWire.corrupted = depart >= ls.killAt ||
                       (ls.flipProb > 0.0 && rng_.nextBool(ls.flipProb));
    if (onWire.corrupted)
        ++report_.flitsCorrupted;

    LinkEvent ev;
    ev.kind = LinkEvent::Kind::FlitToRouter;
    ev.router = ls.dst;
    ev.inPort = ls.inPort;
    ev.flit = onWire;
    ring_->schedule(now, depart + linkLatency_ * ls.distance, ev);
}

void
FaultController::resendWindow(LinkState &ls, Cycle now, bool fromTimeout)
{
    if (ls.retryBuf.empty())
        return;
    // No retries while unplugged: the outage is not the protocol's
    // fault, and counting it against retryLimit would kill the link.
    if (ls.down)
        return;
    ++ls.retryCount;
    if (ls.retryCount > plan_.retryLimit) {
        killLink(ls, now);
        return;
    }
    if (fromTimeout)
        ++report_.retryTimeouts;
    ls.lastResendAt = now;
    for (RetryEntry &entry : ls.retryBuf) {
        transmit(ls, entry, now);
        ++report_.flitsRetransmitted;
    }
}

void
FaultController::killLink(LinkState &ls, Cycle now)
{
    ls.dead = true;
    anyDead_ = true;
    ++generation_;
    reachDirty_ = true;
    ++report_.linksKilled;
    for (const RetryEntry &entry : ls.retryBuf)
        recordDropped(entry.flit);
    ls.retryBuf.clear();
    if (chk_) {
        // The dropped flits' credits never return: waive exactly this
        // link's ledger, and permanently silence the progress probe —
        // packets wedged behind the dead link are expected.
        chk_->waiveLink(ls.src, ls.outPort, ls.dropIdx);
        chk_->waiveProgressUntil(kNeverCycle);
    }
    (void)now;
}

void
FaultController::recordDropped(const Flit &flit)
{
    if (!droppedPackets_.insert(flit.packet).second)
        return;
    ++report_.packetsDropped;
    ++flows_[{flit.src, flit.dst}].dropped;
}

// ----------------------------------------------------------------------
// Protected links: receiver + ACK channel.
// ----------------------------------------------------------------------

void
FaultController::sendAck(const LinkState &ls, bool ok, std::uint32_t seq,
                         Cycle now)
{
    LinkEvent ev;
    ev.kind = LinkEvent::Kind::LinkAck;
    ev.router = ls.src;
    ev.ackLink = static_cast<int>(&ls - links_.data());
    ev.ackSeq = seq;
    ev.ackOk = ok;
    ring_->schedule(now, now + 1 + creditLatency_ * ls.distance, ev);
}

bool
FaultController::onReceive(RouterId r, PortId inPort, const Flit &flit,
                           Cycle now)
{
    auto it = receiverIdx_.find(receiverKey(r, inPort));
    if (it == receiverIdx_.end())
        return true;
    LinkState &ls = links_[it->second];
    if (ls.dead)
        return false;   // straggler on a declared-dead link
    if (!flit.corrupted && flit.linkSeq == ls.expectedSeq) {
        ++ls.expectedSeq;
        ls.nackedAt = kNeverCycle;
        sendAck(ls, /*ok=*/true, flit.linkSeq, now);
        return true;
    }
    // CRC failure, a gap (go-back-N discards past the loss), or a
    // duplicate from a resend overlap. NACK the expected sequence at
    // most once per timeout window; the sender's timer covers the rest.
    const bool fresh_gap =
        ls.nackedAt == kNeverCycle || now >= ls.nackedAt + retryTimeout_;
    if (static_cast<std::int32_t>(flit.linkSeq - ls.expectedSeq) >= 0 &&
        fresh_gap) {
        sendAck(ls, /*ok=*/false, ls.expectedSeq, now);
        ls.nackedAt = now;
        ++report_.nacksSent;
    }
    return false;
}

void
FaultController::onAck(const LinkEvent &ev, Cycle now)
{
    LinkState &ls = links_[static_cast<std::size_t>(ev.ackLink)];
    if (ls.dead)
        return;
    // Cumulative ACK of everything up to ackSeq (NACK acks the prefix
    // below the requested sequence).
    const std::uint32_t upto = ev.ackOk ? ev.ackSeq + 1 : ev.ackSeq;
    bool progressed = false;
    while (!ls.retryBuf.empty() &&
           static_cast<std::int32_t>(upto -
                                     ls.retryBuf.front().flit.linkSeq) > 0) {
        ls.retryBuf.pop_front();
        progressed = true;
    }
    if (progressed)
        ls.retryCount = 0;
    if (ev.ackOk)
        return;
    if (ls.retryBuf.empty())
        return;  // stale NACK: everything it asked for is already acked
    if (static_cast<std::int32_t>(ev.ackSeq -
                                  ls.retryBuf.front().flit.linkSeq) < 0)
        return;  // stale NACK from before a rewind
    if (ls.lastResendAt != kNeverCycle && now < ls.lastResendAt + retryTimeout_)
        return;  // a rewind is already in flight; don't double-count retries
    resendWindow(ls, now, /*fromTimeout=*/false);
}

bool
FaultController::linkDead(RouterId r, PortId outPort, int dropIdx) const
{
    auto it = senderIdx_.find(senderKey(r, outPort, dropIdx));
    return it != senderIdx_.end() && links_[it->second].dead;
}

bool
FaultController::linkUnavailable(RouterId r, PortId outPort, int dropIdx) const
{
    auto it = senderIdx_.find(senderKey(r, outPort, dropIdx));
    if (it == senderIdx_.end())
        return false;
    const LinkState &ls = links_[it->second];
    return ls.dead || ls.down;
}

// ----------------------------------------------------------------------
// Reachability / degradation accounting.
// ----------------------------------------------------------------------

void
FaultController::rebuildReachability() const
{
    const int n = topo_.numRouters();
    reach_.assign(static_cast<std::size_t>(n) * n, 0);
    std::vector<RouterId> queue;
    for (RouterId from = 0; from < n; ++from) {
        queue.clear();
        queue.push_back(from);
        reach_[static_cast<std::size_t>(from) * n + from] = 1;
        for (std::size_t head = 0; head < queue.size(); ++head) {
            const RouterId r = queue[head];
            for (PortId p = 0; p < topo_.numOutputPorts(r); ++p) {
                const OutputChannel &chan = topo_.output(r, p);
                if (chan.isTerminal())
                    continue;
                for (std::size_t d = 0; d < chan.drops.size(); ++d) {
                    if (linkUnavailable(r, p, static_cast<int>(d)))
                        continue;
                    const RouterId next = chan.drops[d].router;
                    char &seen =
                        reach_[static_cast<std::size_t>(from) * n + next];
                    if (!seen) {
                        seen = 1;
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    reachDirty_ = false;
}

bool
FaultController::reachable(RouterId from, RouterId to) const
{
    if (!anyUnavailable())
        return true;
    if (reachDirty_ || reach_.empty())
        rebuildReachability();
    return reach_[static_cast<std::size_t>(from) * topo_.numRouters() + to] !=
           0;
}

bool
FaultController::routable(NodeId src, NodeId dst) const
{
    if (!anyUnavailable())
        return true;
    return reachable(topo_.nodeRouter(src), topo_.nodeRouter(dst));
}

bool
FaultController::dropCredit(RouterId r)
{
    if (plan_.dropCreditEvery == 0)
        return false;
    if (++creditCounters_[r] % plan_.dropCreditEvery != 0)
        return false;
    ++report_.creditsDropped;
    return true;
}

void
FaultController::onOffered(const PacketDesc &p)
{
    ++report_.packetsOffered;
    offeredFlits_ += p.size;
    ++flows_[{p.src, p.dst}].offered;
}

void
FaultController::onUnroutable(const PacketDesc &p)
{
    ++report_.packetsUnroutable;
    ++flows_[{p.src, p.dst}].unroutable;
}

void
FaultController::onDelivered(const Flit &flit)
{
    ++report_.packetsDelivered;
    deliveredFlits_ += flit.packetSize;
    ++flows_[{flit.src, flit.dst}].delivered;
}

FaultReport
FaultController::report(Cycle cyclesRun, int numNodes) const
{
    FaultReport out = report_;
    const double denom =
        static_cast<double>(cyclesRun) * static_cast<double>(numNodes);
    if (denom > 0.0) {
        out.offeredThroughput = static_cast<double>(offeredFlits_) / denom;
        out.achievedThroughput =
            static_cast<double>(deliveredFlits_) / denom;
    }
    out.flows.reserve(flows_.size());
    for (const auto &[key, counts] : flows_) {
        FaultReport::Flow f;
        f.src = key.first;
        f.dst = key.second;
        f.offered = counts.offered;
        f.delivered = counts.delivered;
        f.dropped = counts.dropped;
        f.unroutable = counts.unroutable;
        const std::uint64_t settled =
            counts.delivered + counts.dropped + counts.unroutable;
        f.inFlight = counts.offered > settled ? counts.offered - settled : 0;
        out.packetsInFlight += f.inFlight;
        out.flows.push_back(f);
    }
    return out;
}

} // namespace noc
