#include "fault/fault_controller.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "verify/verify.hpp"

namespace noc {

FaultController::FaultController(const FaultPlan &plan, const SimConfig &cfg,
                                 const Topology &topo)
    : plan_(plan), topo_(topo), linkLatency_(cfg.linkLatency),
      creditLatency_(cfg.creditLatency),
      retryTimeout_(plan.retryTimeout > 0
                        ? plan.retryTimeout
                        : 4 * static_cast<Cycle>(cfg.linkLatency +
                                                 cfg.creditLatency) +
                              8),
      // Distinct stream from traffic generation: a fault plan must not
      // perturb which packets the workload produces.
      rng_(cfg.seed * 9157 + 311)
{
    if (cfg.scheme == Scheme::Evc &&
        (plan_.hasLinkClauses() || !plan_.stalls.empty()))
        NOC_FATAL("fault plan: link/stall clauses are not supported with "
                  "scheme=evc (express bypass has no link-retry path)");
    if (!plan_.kills.empty()) {
        if (cfg.topology != TopologyKind::Mesh &&
            cfg.topology != TopologyKind::CMesh)
            NOC_FATAL("fault plan: kill-link requires topology=mesh|cmesh "
                      "(rerouting fallback assumes a grid)");
        if (cfg.routing != RoutingKind::XY && cfg.routing != RoutingKind::YX)
            NOC_FATAL("fault plan: kill-link requires routing=xy|yx");
    }

    for (const FlipLinkClause &c : plan_.flips) {
        LinkState &ls = linkFor(c.src, c.dst, "flip-link");
        ls.flipProb = std::max(ls.flipProb, c.prob);
    }
    for (const KillLinkClause &c : plan_.kills) {
        LinkState &ls = linkFor(c.src, c.dst, "kill-link");
        ls.killAt = std::min(ls.killAt, c.atCycle);
    }
    for (const StallRouterClause &c : plan_.stalls) {
        if (c.router < 0 || c.router >= topo_.numRouters())
            NOC_FATAL("fault plan: stall-router target " +
                      std::to_string(c.router) + " out of range");
        stalls_.push_back(c);
    }
    creditCounters_.assign(static_cast<std::size_t>(topo_.numRouters()), 0);
    report_.active = true;
}

FaultController::LinkState &
FaultController::linkFor(const RouterId src, const RouterId dst,
                         const char *clause)
{
    if (src < 0 || src >= topo_.numRouters() || dst < 0 ||
        dst >= topo_.numRouters())
        NOC_FATAL(std::string("fault plan: ") + clause + " router pair " +
                  std::to_string(src) + ">" + std::to_string(dst) +
                  " out of range");
    // Resolve the first (outPort, drop) on `src` that reaches `dst`.
    for (PortId p = 0; p < topo_.numOutputPorts(src); ++p) {
        const OutputChannel &chan = topo_.output(src, p);
        if (chan.isTerminal())
            continue;
        for (std::size_t d = 0; d < chan.drops.size(); ++d) {
            if (chan.drops[d].router != dst)
                continue;
            const std::uint64_t key =
                senderKey(src, p, static_cast<int>(d));
            auto it = senderIdx_.find(key);
            if (it != senderIdx_.end())
                return links_[it->second];
            LinkState ls;
            ls.src = src;
            ls.dst = dst;
            ls.outPort = p;
            ls.dropIdx = static_cast<int>(d);
            ls.inPort = chan.drops[d].inPort;
            ls.distance = chan.drops[d].distance;
            links_.push_back(ls);
            const int idx = static_cast<int>(links_.size()) - 1;
            senderIdx_[key] = idx;
            receiverIdx_[receiverKey(dst, ls.inPort)] = idx;
            return links_[idx];
        }
    }
    NOC_FATAL(std::string("fault plan: ") + clause + " names " +
              std::to_string(src) + ">" + std::to_string(dst) +
              " but the topology has no such link");
}

void
FaultController::bindVerifier(InvariantChecker *chk)
{
    chk_ = chk;
    if (!chk_)
        return;
    // Stall windows legitimately freeze forward progress; tell the
    // deadlock probe up front. Dead-link waivers install as links die.
    Cycle lastStallEnd = 0;
    for (const StallRouterClause &c : stalls_)
        lastStallEnd = std::max(lastStallEnd, c.to);
    if (lastStallEnd > 0)
        chk_->waiveProgressUntil(lastStallEnd);
    for (const LinkState &ls : links_) {
        if (ls.dead) {
            chk_->waiveLink(ls.src, ls.outPort, ls.dropIdx);
            chk_->waiveProgressUntil(kNeverCycle);
        }
    }
}

// ----------------------------------------------------------------------
// Stalls.
// ----------------------------------------------------------------------

bool
FaultController::routerStalled(RouterId r, Cycle now) const
{
    for (const StallRouterClause &c : stalls_) {
        if (c.router == r && now >= c.from && now <= c.to)
            return true;
    }
    return false;
}

void
FaultController::beginCycle(Cycle now)
{
    for (const StallRouterClause &c : stalls_) {
        if (now >= c.from && now <= c.to)
            ++report_.stallCycles;
    }
    for (LinkState &ls : links_) {
        if (ls.dead || ls.retryBuf.empty())
            continue;
        if (now >= ls.retryBuf.front().sentAt + retryTimeout_)
            resendWindow(ls, now, /*fromTimeout=*/true);
    }
}

bool
FaultController::captureArrival(const LinkEvent &ev, Cycle now)
{
    if (ev.kind == LinkEvent::Kind::CreditToRouter) {
        if (!routerStalled(ev.router, now))
            return false;
        heldCredits_[ev.router].push_back(ev);
        return true;
    }
    if (ev.kind != LinkEvent::Kind::FlitToRouter)
        return false;
    const auto key = std::make_pair(ev.router, ev.inPort);
    const bool backlog = [&] {
        auto it = heldFlits_.find(key);
        if (it != heldFlits_.end() && !it->second.empty())
            return true;
        auto rel = lastFlitRelease_.find(key);
        return rel != lastFlitRelease_.end() && rel->second == now;
    }();
    if (!routerStalled(ev.router, now) && !backlog)
        return false;
    heldFlits_[key].push_back(ev);
    return true;
}

void
FaultController::drainStallQueues(Cycle now, std::vector<LinkEvent> &out)
{
    for (auto &[router, credits] : heldCredits_) {
        if (credits.empty() || routerStalled(router, now))
            continue;
        out.insert(out.end(), credits.begin(), credits.end());
        credits.clear();
    }
    // One flit per port per cycle: the wire re-serialises its backlog.
    for (auto &[key, flits] : heldFlits_) {
        if (flits.empty() || routerStalled(key.first, now))
            continue;
        out.push_back(flits.front());
        flits.pop_front();
        lastFlitRelease_[key] = now;
    }
}

// ----------------------------------------------------------------------
// Protected links: sender.
// ----------------------------------------------------------------------

bool
FaultController::handleSend(RouterId r, PortId outPort, int dropIdx,
                            const Flit &flit, Cycle now)
{
    auto it = senderIdx_.find(senderKey(r, outPort, dropIdx));
    if (it == senderIdx_.end())
        return false;
    LinkState &ls = links_[it->second];
    if (ls.dead) {
        recordDropped(flit);
        return true;
    }
    RetryEntry entry;
    entry.flit = flit;
    entry.flit.linkSeq = ls.nextSeq++;
    transmit(ls, entry, now);
    ls.retryBuf.push_back(entry);
    NOC_ASSERT(ls.retryBuf.size() < 4096,
               "link retry buffer runaway (ACKs not draining?)");
    return true;
}

void
FaultController::transmit(LinkState &ls, RetryEntry &entry, Cycle now)
{
    // The wire carries one flit per cycle: serialise departures so a
    // retransmission burst cannot land two flits on one input port in
    // the same cycle.
    const Cycle depart = std::max(now + 1, ls.nextFreeTx);
    ls.nextFreeTx = depart + 1;
    entry.sentAt = depart;

    Flit onWire = entry.flit;
    onWire.corrupted = depart >= ls.killAt ||
                       (ls.flipProb > 0.0 && rng_.nextBool(ls.flipProb));
    if (onWire.corrupted)
        ++report_.flitsCorrupted;

    LinkEvent ev;
    ev.kind = LinkEvent::Kind::FlitToRouter;
    ev.router = ls.dst;
    ev.inPort = ls.inPort;
    ev.flit = onWire;
    ring_->schedule(now, depart + linkLatency_ * ls.distance, ev);
}

void
FaultController::resendWindow(LinkState &ls, Cycle now, bool fromTimeout)
{
    if (ls.retryBuf.empty())
        return;
    ++ls.retryCount;
    if (ls.retryCount > plan_.retryLimit) {
        killLink(ls, now);
        return;
    }
    if (fromTimeout)
        ++report_.retryTimeouts;
    ls.lastResendAt = now;
    for (RetryEntry &entry : ls.retryBuf) {
        transmit(ls, entry, now);
        ++report_.flitsRetransmitted;
    }
}

void
FaultController::killLink(LinkState &ls, Cycle now)
{
    ls.dead = true;
    anyDead_ = true;
    ++generation_;
    reachDirty_ = true;
    ++report_.linksKilled;
    for (const RetryEntry &entry : ls.retryBuf)
        recordDropped(entry.flit);
    ls.retryBuf.clear();
    if (chk_) {
        // The dropped flits' credits never return: waive exactly this
        // link's ledger, and permanently silence the progress probe —
        // packets wedged behind the dead link are expected.
        chk_->waiveLink(ls.src, ls.outPort, ls.dropIdx);
        chk_->waiveProgressUntil(kNeverCycle);
    }
    (void)now;
}

void
FaultController::recordDropped(const Flit &flit)
{
    if (!droppedPackets_.insert(flit.packet).second)
        return;
    ++report_.packetsDropped;
    ++flows_[{flit.src, flit.dst}].dropped;
}

// ----------------------------------------------------------------------
// Protected links: receiver + ACK channel.
// ----------------------------------------------------------------------

void
FaultController::sendAck(const LinkState &ls, bool ok, std::uint32_t seq,
                         Cycle now)
{
    LinkEvent ev;
    ev.kind = LinkEvent::Kind::LinkAck;
    ev.router = ls.src;
    ev.ackLink = static_cast<int>(&ls - links_.data());
    ev.ackSeq = seq;
    ev.ackOk = ok;
    ring_->schedule(now, now + 1 + creditLatency_ * ls.distance, ev);
}

bool
FaultController::onReceive(RouterId r, PortId inPort, const Flit &flit,
                           Cycle now)
{
    auto it = receiverIdx_.find(receiverKey(r, inPort));
    if (it == receiverIdx_.end())
        return true;
    LinkState &ls = links_[it->second];
    if (ls.dead)
        return false;   // straggler on a declared-dead link
    if (!flit.corrupted && flit.linkSeq == ls.expectedSeq) {
        ++ls.expectedSeq;
        ls.nackedAt = kNeverCycle;
        sendAck(ls, /*ok=*/true, flit.linkSeq, now);
        return true;
    }
    // CRC failure, a gap (go-back-N discards past the loss), or a
    // duplicate from a resend overlap. NACK the expected sequence at
    // most once per timeout window; the sender's timer covers the rest.
    const bool fresh_gap =
        ls.nackedAt == kNeverCycle || now >= ls.nackedAt + retryTimeout_;
    if (static_cast<std::int32_t>(flit.linkSeq - ls.expectedSeq) >= 0 &&
        fresh_gap) {
        sendAck(ls, /*ok=*/false, ls.expectedSeq, now);
        ls.nackedAt = now;
        ++report_.nacksSent;
    }
    return false;
}

void
FaultController::onAck(const LinkEvent &ev, Cycle now)
{
    LinkState &ls = links_[static_cast<std::size_t>(ev.ackLink)];
    if (ls.dead)
        return;
    // Cumulative ACK of everything up to ackSeq (NACK acks the prefix
    // below the requested sequence).
    const std::uint32_t upto = ev.ackOk ? ev.ackSeq + 1 : ev.ackSeq;
    bool progressed = false;
    while (!ls.retryBuf.empty() &&
           static_cast<std::int32_t>(upto -
                                     ls.retryBuf.front().flit.linkSeq) > 0) {
        ls.retryBuf.pop_front();
        progressed = true;
    }
    if (progressed)
        ls.retryCount = 0;
    if (ev.ackOk)
        return;
    if (ls.retryBuf.empty())
        return;  // stale NACK: everything it asked for is already acked
    if (static_cast<std::int32_t>(ev.ackSeq -
                                  ls.retryBuf.front().flit.linkSeq) < 0)
        return;  // stale NACK from before a rewind
    if (ls.lastResendAt != kNeverCycle && now < ls.lastResendAt + retryTimeout_)
        return;  // a rewind is already in flight; don't double-count retries
    resendWindow(ls, now, /*fromTimeout=*/false);
}

bool
FaultController::linkDead(RouterId r, PortId outPort, int dropIdx) const
{
    auto it = senderIdx_.find(senderKey(r, outPort, dropIdx));
    return it != senderIdx_.end() && links_[it->second].dead;
}

// ----------------------------------------------------------------------
// Reachability / degradation accounting.
// ----------------------------------------------------------------------

void
FaultController::rebuildReachability() const
{
    const int n = topo_.numRouters();
    reach_.assign(static_cast<std::size_t>(n) * n, 0);
    std::vector<RouterId> queue;
    for (RouterId from = 0; from < n; ++from) {
        queue.clear();
        queue.push_back(from);
        reach_[static_cast<std::size_t>(from) * n + from] = 1;
        for (std::size_t head = 0; head < queue.size(); ++head) {
            const RouterId r = queue[head];
            for (PortId p = 0; p < topo_.numOutputPorts(r); ++p) {
                const OutputChannel &chan = topo_.output(r, p);
                if (chan.isTerminal())
                    continue;
                for (std::size_t d = 0; d < chan.drops.size(); ++d) {
                    if (linkDead(r, p, static_cast<int>(d)))
                        continue;
                    const RouterId next = chan.drops[d].router;
                    char &seen =
                        reach_[static_cast<std::size_t>(from) * n + next];
                    if (!seen) {
                        seen = 1;
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    reachDirty_ = false;
}

bool
FaultController::reachable(RouterId from, RouterId to) const
{
    if (!anyDead_)
        return true;
    if (reachDirty_ || reach_.empty())
        rebuildReachability();
    return reach_[static_cast<std::size_t>(from) * topo_.numRouters() + to] !=
           0;
}

bool
FaultController::routable(NodeId src, NodeId dst) const
{
    if (!anyDead_)
        return true;
    return reachable(topo_.nodeRouter(src), topo_.nodeRouter(dst));
}

bool
FaultController::dropCredit(RouterId r)
{
    if (plan_.dropCreditEvery == 0)
        return false;
    if (++creditCounters_[r] % plan_.dropCreditEvery != 0)
        return false;
    ++report_.creditsDropped;
    return true;
}

void
FaultController::onOffered(const PacketDesc &p)
{
    ++report_.packetsOffered;
    offeredFlits_ += p.size;
    ++flows_[{p.src, p.dst}].offered;
}

void
FaultController::onUnroutable(const PacketDesc &p)
{
    ++report_.packetsUnroutable;
    ++flows_[{p.src, p.dst}].unroutable;
}

void
FaultController::onDelivered(const Flit &flit)
{
    ++report_.packetsDelivered;
    deliveredFlits_ += flit.packetSize;
    ++flows_[{flit.src, flit.dst}].delivered;
}

FaultReport
FaultController::report(Cycle cyclesRun, int numNodes) const
{
    FaultReport out = report_;
    const double denom =
        static_cast<double>(cyclesRun) * static_cast<double>(numNodes);
    if (denom > 0.0) {
        out.offeredThroughput = static_cast<double>(offeredFlits_) / denom;
        out.achievedThroughput =
            static_cast<double>(deliveredFlits_) / denom;
    }
    out.flows.reserve(flows_.size());
    for (const auto &[key, counts] : flows_) {
        FaultReport::Flow f;
        f.src = key.first;
        f.dst = key.second;
        f.offered = counts.offered;
        f.delivered = counts.delivered;
        f.dropped = counts.dropped;
        f.unroutable = counts.unroutable;
        out.flows.push_back(f);
    }
    return out;
}

} // namespace noc
