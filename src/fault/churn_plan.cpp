#include "fault/churn_plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace noc {

namespace {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s[0] == '-')
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return end && *end == '\0';
}

/// "<a>><b>" -> (a, b)
bool
parseLinkPair(const std::string &s, RouterId &a, RouterId &b)
{
    const std::size_t gt = s.find('>');
    if (gt == std::string::npos)
        return false;
    std::uint64_t ua = 0;
    std::uint64_t ub = 0;
    if (!parseU64(s.substr(0, gt), ua) || !parseU64(s.substr(gt + 1), ub))
        return false;
    a = static_cast<RouterId>(ua);
    b = static_cast<RouterId>(ub);
    return true;
}

/// "up<U>/down<D>[/phase<P>]" -> (up, down, phase); up and down >= 1.
bool
parseUpDown(const std::string &s, Cycle &up, Cycle &down, Cycle &phase)
{
    const std::vector<std::string> parts = split(s, '/');
    if (parts.size() < 2 || parts.size() > 3)
        return false;
    std::uint64_t u = 0;
    std::uint64_t d = 0;
    std::uint64_t p = 0;
    if (parts[0].rfind("up", 0) != 0 || !parseU64(parts[0].substr(2), u))
        return false;
    if (parts[1].rfind("down", 0) != 0 || !parseU64(parts[1].substr(4), d))
        return false;
    if (parts.size() == 3) {
        if (parts[2].rfind("phase", 0) != 0 ||
            !parseU64(parts[2].substr(5), p))
            return false;
    }
    if (u == 0 || d == 0)
        return false;
    up = u;
    down = d;
    phase = p;
    return true;
}

std::string
entityName(const ChurnTraceEvent &ev)
{
    if (ev.isRouter)
        return "router " + std::to_string(ev.src);
    return "link " + std::to_string(ev.src) + ">" + std::to_string(ev.dst);
}

} // namespace

bool
ChurnPlan::hasLinkClauses() const
{
    if (!periods.empty() || !windows.empty() || !randoms.empty())
        return true;
    return std::any_of(traceEvents.begin(), traceEvents.end(),
                       [](const ChurnTraceEvent &e) { return !e.isRouter; });
}

bool
ChurnPlan::hasRouterClauses() const
{
    if (!routerPeriods.empty())
        return true;
    return std::any_of(traceEvents.begin(), traceEvents.end(),
                       [](const ChurnTraceEvent &e) { return e.isRouter; });
}

ChurnPlan
ChurnPlan::parse(const std::string &spec, std::string *error)
{
    ChurnPlan plan;
    auto fail = [&](const std::string &msg) -> ChurnPlan {
        if (error) {
            *error = msg;
            return ChurnPlan{};
        }
        NOC_FATAL("bad churn plan: " + msg);
    };
    if (error)
        error->clear();
    if (spec.empty())
        return plan;

    for (const std::string &clause : split(spec, ',')) {
        if (clause.empty())
            return fail("empty clause in '" + spec + "'");

        if (clause.rfind("period:", 0) == 0) {
            const std::string body = clause.substr(7);
            const std::size_t at = body.find('@');
            ChurnPeriodClause c;
            if (at == std::string::npos ||
                !parseLinkPair(body.substr(0, at), c.src, c.dst) ||
                !parseUpDown(body.substr(at + 1), c.up, c.down, c.phase))
                return fail("expected period:<a>><b>@up<U>/down<D>"
                            "[/phase<P>] with U,D >= 1, got '" +
                            clause + "'");
            for (const ChurnPeriodClause &prev : plan.periods) {
                if (prev.src == c.src && prev.dst == c.dst)
                    return fail("duplicate period clause for link " +
                                std::to_string(c.src) + ">" +
                                std::to_string(c.dst));
            }
            plan.periods.push_back(c);
        } else if (clause.rfind("window:", 0) == 0) {
            const std::string body = clause.substr(7);
            const std::size_t at = body.find('@');
            const std::size_t dots =
                at == std::string::npos ? std::string::npos
                                        : body.find("..", at);
            ChurnWindowClause c;
            std::uint64_t from = 0;
            std::uint64_t to = 0;
            if (at == std::string::npos || dots == std::string::npos ||
                !parseLinkPair(body.substr(0, at), c.src, c.dst) ||
                !parseU64(body.substr(at + 1, dots - at - 1), from) ||
                !parseU64(body.substr(dots + 2), to))
                return fail("expected window:<a>><b>@<from>..<to>, got '" +
                            clause + "'");
            c.from = from;
            c.to = to;
            if (c.to < c.from)
                return fail("churn window ends before it starts in '" +
                            clause + "'");
            for (const ChurnWindowClause &prev : plan.windows) {
                if (prev.src == c.src && prev.dst == c.dst &&
                    c.from <= prev.to && prev.from <= c.to)
                    return fail("overlapping churn windows for link " +
                                std::to_string(c.src) + ">" +
                                std::to_string(c.dst) + " (cycle " +
                                std::to_string(std::max(c.from, prev.from)) +
                                ")");
            }
            plan.windows.push_back(c);
        } else if (clause.rfind("router-period:", 0) == 0) {
            const std::string body = clause.substr(14);
            const std::size_t at = body.find('@');
            RouterPeriodClause c;
            std::uint64_t r = 0;
            if (at == std::string::npos ||
                !parseU64(body.substr(0, at), r) ||
                !parseUpDown(body.substr(at + 1), c.up, c.down, c.phase))
                return fail("expected router-period:<r>@up<U>/down<D>"
                            "[/phase<P>] with U,D >= 1, got '" +
                            clause + "'");
            c.router = static_cast<RouterId>(r);
            for (const RouterPeriodClause &prev : plan.routerPeriods) {
                if (prev.router == c.router)
                    return fail("duplicate router-period clause for "
                                "router " + std::to_string(c.router));
            }
            plan.routerPeriods.push_back(c);
        } else if (clause.rfind("random@", 0) == 0) {
            const std::vector<std::string> parts =
                split(clause.substr(7), '/');
            RandomChurnClause c;
            std::uint64_t f = 0;
            std::uint64_t r = 0;
            std::uint64_t n = 2;
            bool ok = parts.size() >= 2 && parts.size() <= 3 &&
                parts[0].rfind("mttf", 0) == 0 &&
                parseU64(parts[0].substr(4), f) &&
                parts[1].rfind("mttr", 0) == 0 &&
                parseU64(parts[1].substr(4), r);
            if (ok && parts.size() == 3)
                ok = parts[2].rfind("links", 0) == 0 &&
                     parseU64(parts[2].substr(5), n);
            if (!ok || f == 0 || r == 0 || n == 0)
                return fail("expected random@mttf<F>/mttr<R>[/links<N>] "
                            "with F,R,N >= 1, got '" + clause + "'");
            c.mttf = f;
            c.mttr = r;
            c.links = static_cast<int>(n);
            plan.randoms.push_back(c);
        } else if (clause.rfind("trace:", 0) == 0) {
            const std::string path = clause.substr(6);
            std::ifstream in(path);
            if (!in)
                return fail("cannot open churn trace '" + path + "'");
            std::string line;
            std::size_t lineno = 0;
            std::vector<ChurnTraceEvent> events;
            while (std::getline(in, line)) {
                ++lineno;
                const std::size_t hash = line.find('#');
                if (hash != std::string::npos)
                    line.resize(hash);
                std::istringstream is(line);
                std::string cyc;
                std::string kind;
                std::string target;
                std::string state;
                if (!(is >> cyc))
                    continue;   // blank / comment-only line
                ChurnTraceEvent ev;
                std::uint64_t c = 0;
                std::string extra;
                if (!(is >> kind >> target >> state) || (is >> extra) ||
                    !parseU64(cyc, c))
                    return fail("churn trace '" + path + "' line " +
                                std::to_string(lineno) +
                                ": expected '<cycle> link <a>><b> down|up'"
                                " or '<cycle> router <r> down|up'");
                ev.cycle = c;
                if (kind == "link") {
                    if (!parseLinkPair(target, ev.src, ev.dst))
                        return fail("churn trace '" + path + "' line " +
                                    std::to_string(lineno) +
                                    ": bad link '" + target + "'");
                } else if (kind == "router") {
                    std::uint64_t r = 0;
                    if (!parseU64(target, r))
                        return fail("churn trace '" + path + "' line " +
                                    std::to_string(lineno) +
                                    ": bad router '" + target + "'");
                    ev.isRouter = true;
                    ev.src = static_cast<RouterId>(r);
                } else {
                    return fail("churn trace '" + path + "' line " +
                                std::to_string(lineno) +
                                ": unknown entity kind '" + kind + "'");
                }
                if (state == "up")
                    ev.up = true;
                else if (state == "down")
                    ev.up = false;
                else
                    return fail("churn trace '" + path + "' line " +
                                std::to_string(lineno) +
                                ": expected down|up, got '" + state + "'");
                events.push_back(ev);
            }
            plan.traceEvents.insert(plan.traceEvents.end(), events.begin(),
                                    events.end());
        } else {
            return fail("unknown clause '" + clause + "'");
        }
    }
    // Reject conflicting duplicates (across all trace files): two events
    // for the same (cycle, entity) have no defined order.
    for (std::size_t i = 0; i < plan.traceEvents.size(); ++i) {
        for (std::size_t j = i + 1; j < plan.traceEvents.size(); ++j) {
            const ChurnTraceEvent &a = plan.traceEvents[i];
            const ChurnTraceEvent &b = plan.traceEvents[j];
            if (a.cycle == b.cycle && a.isRouter == b.isRouter &&
                a.src == b.src && (a.isRouter || a.dst == b.dst))
                return fail("churn trace: duplicate events for " +
                            entityName(a) + " at cycle " +
                            std::to_string(a.cycle));
        }
    }
    std::stable_sort(plan.traceEvents.begin(), plan.traceEvents.end(),
                     [](const ChurnTraceEvent &a, const ChurnTraceEvent &b) {
                         return a.cycle < b.cycle;
                     });
    return plan;
}

} // namespace noc
