/**
 * @file
 * Time-varying topology churn plans: a small grammar describing when
 * links and routers leave and rejoin the network mid-run.
 *
 * A plan is a comma-separated clause list parsed from the `churn=`
 * config key, e.g.
 *
 *   churn=period:1>2@up300/down80/phase500,window:2>6@500..700,
 *         router-period:5@up600/down100,random@mttf800/mttr150/links4,
 *         trace:/path/to/contacts.trace
 *
 * Clauses:
 *   period:<a>><b>@up<U>/down<D>[/phase<P>]
 *       the a->b link repeats an availability cycle: up for U cycles,
 *       then down for D, first going down at cycle P+U (P defaults 0)
 *   window:<a>><b>@<f>..<t>
 *       one-shot outage: the a->b link is down for cycles [f, t] and
 *       revives at t+1
 *   router-period:<r>@up<U>/down<D>[/phase<P>]
 *       router r repeats the same availability cycle; a down router
 *       freezes exactly like a stall-router fault window
 *   random@mttf<F>/mttr<R>[/links<N>]
 *       seeded random churn over N deterministically chosen links
 *       (default 2): each alternates up/down with durations drawn
 *       uniformly from [1, 2*mean-1] (mean F up, mean R down) from a
 *       dedicated RNG stream, so the same seed replays the same churn
 *   trace:<path>
 *       replay an availability trace file. Lines are
 *           <cycle> link <a>><b> down|up
 *           <cycle> router <r> down|up
 *       with '#' comments and blank lines ignored. Two events for the
 *       same (cycle, entity) are rejected as a conflict.
 *
 * Unlike `fault=` kill-link, churn outages are *lossless*: a down link
 * is unplugged, not corrupted — flits routed onto it wait in the link's
 * go-back-N retry buffer and resume in order at revival, so credit and
 * packet conservation hold under the full invariant mask throughout.
 *
 * Parsing is pure except for trace-file loading; clause targets are
 * resolved and validated against the concrete topology by the
 * FaultController.
 */

#ifndef NOC_FAULT_CHURN_PLAN_HPP
#define NOC_FAULT_CHURN_PLAN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace noc {

/** Periodic availability of one directed router->router link. */
struct ChurnPeriodClause
{
    RouterId src = kInvalidRouter;
    RouterId dst = kInvalidRouter;
    Cycle up = 0;
    Cycle down = 0;
    Cycle phase = 0;
};

/** One-shot outage of one directed link over an inclusive window. */
struct ChurnWindowClause
{
    RouterId src = kInvalidRouter;
    RouterId dst = kInvalidRouter;
    Cycle from = 0;
    Cycle to = 0;
};

/** Periodic availability of a whole router. */
struct RouterPeriodClause
{
    RouterId router = kInvalidRouter;
    Cycle up = 0;
    Cycle down = 0;
    Cycle phase = 0;
};

/** Seeded random churn over N deterministically chosen links. */
struct RandomChurnClause
{
    Cycle mttf = 0;   ///< mean cycles between failures (up duration)
    Cycle mttr = 0;   ///< mean cycles to repair (down duration)
    int links = 2;
};

/** One replayed availability transition from a trace file. */
struct ChurnTraceEvent
{
    Cycle cycle = 0;
    bool isRouter = false;
    RouterId src = kInvalidRouter;   ///< router id when isRouter
    RouterId dst = kInvalidRouter;
    bool up = false;                 ///< false = goes down
};

/**
 * A parsed churn plan. Value-semantic; the transition engine lives in
 * FaultController.
 */
struct ChurnPlan
{
    std::vector<ChurnPeriodClause> periods;
    std::vector<ChurnWindowClause> windows;
    std::vector<RouterPeriodClause> routerPeriods;
    std::vector<RandomChurnClause> randoms;
    /// Trace events sorted by cycle (stable: file order within a cycle).
    std::vector<ChurnTraceEvent> traceEvents;

    /** True when no clause was given. */
    bool empty() const
    {
        return periods.empty() && windows.empty() &&
               routerPeriods.empty() && randoms.empty() &&
               traceEvents.empty();
    }

    /** Any clause that can take a link down? */
    bool hasLinkClauses() const;

    /** Any clause that can take a whole router down? */
    bool hasRouterClauses() const;

    /**
     * Parse a clause list (loading any trace files). On an error: if
     * `error` is non-null it receives a one-line message and an empty
     * plan is returned; otherwise the error is fatal.
     */
    static ChurnPlan parse(const std::string &spec,
                           std::string *error = nullptr);
};

} // namespace noc

#endif // NOC_FAULT_CHURN_PLAN_HPP
