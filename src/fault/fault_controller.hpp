/**
 * @file
 * Runtime fault machinery: executes a FaultPlan against a live network.
 *
 * The controller owns three fault classes:
 *
 *  1. Transient link corruption + link-level retry. Links named in the
 *     plan become *protected*: every flit placed on them is assigned a
 *     link sequence number and a copy is kept in a per-link retry
 *     buffer. The receiving side CRC-checks arrivals (modelled by the
 *     `corrupted` flag) and enforces in-order delivery: a clean,
 *     in-sequence flit is accepted and cumulatively ACKed; anything
 *     else is discarded, NACKed once per gap, and the receiving input
 *     port's pseudo-circuit register is torn down (a corrupted wire
 *     invalidates the circuit's cached routing state — the retransmitted
 *     stream rebuilds it through the normal allocation path). The
 *     sender retransmits its window on NACK or timeout (go-back-N), so
 *     the router layer above the link sees a gapless in-order stream:
 *     credits and packet conservation stay exact and transient faults
 *     run under the *full* invariant mask with no waivers.
 *
 *  2. Permanent link death. `kill-link@cycleC` corrupts every
 *     transmission from cycle C; the bounded retry counter exhausts and
 *     the link is declared dead. From then on flits routed onto it are
 *     dropped (and their packets accounted per flow), lookahead routing
 *     detours around it where the topology allows (see FaultRouting),
 *     and unroutable flows are refused at injection. Dead links leak
 *     the credits of dropped flits by design, so the controller
 *     installs *named* checker waivers: the dead link's credit ledger
 *     and the forward-progress probe — nothing else is relaxed.
 *
 *  3. Router stalls and credit drops. A stalled router freezes: its
 *     step() is skipped and arriving flits/credits are held at the
 *     input wires (released in arrival order, one flit per port per
 *     cycle, once the stall window ends). Credit drops absorb the PR 4
 *     `dropCreditEvery` hook: every Nth credit delivered to any router
 *     vanishes.
 *
 *  4. Topology churn (churn_plan.hpp). Scheduled availability
 *     transitions take links and routers down and bring them back.
 *     A *down* link is unplugged, not corrupted: transmissions
 *     initiated while it is down are deferred in the link's go-back-N
 *     retry buffer (bounded by the credit window) and resume in
 *     sequence order at revival, so — unlike a dead link — nothing is
 *     lost and credit/packet conservation hold under the full
 *     invariant mask; only the forward-progress probe is waived until
 *     the scheduled revival. A down *router* reuses the stall
 *     machinery through dynamically appended windows. Every
 *     transition is an epoch boundary: the reroute generation bumps
 *     (invalidating FaultRouting's detour memo), reachability is
 *     recomputed over *available* (alive and up) links, and the
 *     pseudo-circuit registers at both endpoint routers are queued for
 *     teardown (drained by Network::step) because their cached routes
 *     predate the transition. Packets whose destination is temporarily
 *     unreachable are refused at injection and accounted unroutable —
 *     graceful degradation, not a wedge.
 *
 * Everything is deterministic: corruption rolls come from one seeded
 * Rng, random churn from a second dedicated stream, all iteration is
 * over ordered containers, and a fault-free configuration never
 * constructs a controller at all (every hook in the network is gated on
 * a null check).
 */

#ifndef NOC_FAULT_FAULT_CONTROLLER_HPP
#define NOC_FAULT_FAULT_CONTROLLER_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/churn_plan.hpp"
#include "fault/fault_plan.hpp"
#include "network/link.hpp"
#include "router/flit.hpp"
#include "topology/topology.hpp"

namespace noc {

class InvariantChecker;

/** Degradation summary attached to SimResult when a plan is active. */
struct FaultReport
{
    bool active = false;

    // Link-retry protocol.
    std::uint64_t flitsCorrupted = 0;
    std::uint64_t flitsRetransmitted = 0;
    std::uint64_t nacksSent = 0;
    std::uint64_t retryTimeouts = 0;
    std::uint64_t circuitTeardowns = 0;  ///< pseudo-circuits torn by CRC fail

    // Permanent failures / degradation.
    std::uint64_t linksKilled = 0;
    std::uint64_t packetsOffered = 0;    ///< injection attempts (incl. refused)
    std::uint64_t packetsDelivered = 0;
    std::uint64_t packetsDropped = 0;    ///< lost at a dead link
    std::uint64_t packetsUnroutable = 0; ///< refused: no alive path
    double offeredThroughput = 0.0;      ///< offered flits / node / cycle
    double achievedThroughput = 0.0;     ///< delivered flits / node / cycle

    // Other fault classes.
    std::uint64_t creditsDropped = 0;
    std::uint64_t stallCycles = 0;       ///< router-cycles spent frozen

    /// Offered but neither delivered, dropped, nor refused when the
    /// report was assembled — packets still in the fabric (or held in a
    /// down link's retry buffer). Closes the accounting: offered ==
    /// delivered + dropped + unroutable + in-flight, always.
    std::uint64_t packetsInFlight = 0;

    // Topology churn (churn= plans).
    bool churn = false;                  ///< a churn plan is active
    std::uint64_t linkDownEvents = 0;
    std::uint64_t linkUpEvents = 0;
    std::uint64_t routerDownEvents = 0;
    std::uint64_t routerUpEvents = 0;
    std::uint64_t flitsDeferred = 0;     ///< held because the link was down
    std::uint64_t flitsResumed = 0;      ///< deferred flits sent at revival
    std::uint64_t churnTeardowns = 0;    ///< pseudo-circuits torn by transitions

    /** Per-flow delivery accounting (packets), sorted by (src, dst). */
    struct Flow
    {
        NodeId src = kInvalidNode;
        NodeId dst = kInvalidNode;
        std::uint64_t offered = 0;
        std::uint64_t delivered = 0;
        std::uint64_t dropped = 0;
        std::uint64_t unroutable = 0;
        std::uint64_t inFlight = 0;      ///< offered − the other three
    };
    std::vector<Flow> flows;
};

/** One input-port pseudo-circuit register to tear down (epoch flush). */
struct TeardownRequest
{
    RouterId router = kInvalidRouter;
    PortId inPort = kInvalidPort;
};

class FaultController
{
  public:
    /**
     * Resolve a fault plan and a churn plan (either may be empty)
     * against a concrete topology. Fatal on impossible targets (no
     * such link/router) or unsupported combinations (link/stall/churn
     * clauses under scheme=evc; kill-link or link churn outside
     * mesh/cmesh + xy/yx/adaptive routing).
     */
    FaultController(const FaultPlan &plan, const ChurnPlan &churn,
                    const SimConfig &cfg, const Topology &topo);

    /** The network's event ring; must be set before the first cycle. */
    void bindRing(EventRing *ring) { ring_ = ring; }

    /**
     * Attach (or detach, nullptr) the invariant checker the waivers go
     * to; installs the stall-window progress waiver immediately and
     * dead-link waivers as links die.
     */
    void bindVerifier(InvariantChecker *chk);

    // ------------------------------------------------------------------
    // Per-cycle driving (called by Network::step).
    // ------------------------------------------------------------------

    /** Stall accounting + retry timeouts; call at the top of the cycle. */
    void beginCycle(Cycle now);

    /**
     * Pop deliveries whose stall ended: all held credits, and at most
     * one held flit per input port (the wire re-serialises). Appended
     * to `out` with credits first.
     */
    void drainStallQueues(Cycle now, std::vector<LinkEvent> &out);

    /**
     * Capture a FlitToRouter/CreditToRouter arrival aimed at a stalled
     * router (or at a port still draining its backlog). True = held;
     * the caller must not dispatch it.
     */
    bool captureArrival(const LinkEvent &ev, Cycle now);

    /**
     * Cheap gate: any stall clause, or any router churn that may
     * append stall windows mid-run? Pre-arms the arrival-capture path.
     */
    bool anyStalls() const { return !stalls_.empty() || churnRouters_; }

    bool routerStalled(RouterId r, Cycle now) const;

    /**
     * Pseudo-circuit registers whose cached routes predate an
     * availability transition this cycle. True = `out` was filled (and
     * the pending list cleared); the caller tears each one down.
     */
    bool takeTeardowns(std::vector<TeardownRequest> &out);

    // ------------------------------------------------------------------
    // Protected-link send/receive (called by Network).
    // ------------------------------------------------------------------

    /**
     * Sender side. True = this transmission is on a protected link and
     * the controller scheduled (or, when dead, dropped) it; the caller
     * must not schedule the event itself.
     */
    bool handleSend(RouterId r, PortId outPort, int dropIdx,
                    const Flit &flit, Cycle now);

    /**
     * Receiver side. False = the flit failed the CRC/sequence check and
     * was discarded; the caller must not deliver it and should tear
     * down the input port's pseudo-circuit register. Unprotected
     * receivers always return true.
     */
    bool onReceive(RouterId r, PortId inPort, const Flit &flit, Cycle now);

    /** Process a LinkAck event (may trigger resends or a link death). */
    void onAck(const LinkEvent &ev, Cycle now);

    /** Count a pseudo-circuit torn down by a rejected arrival. */
    void noteCircuitTeardown() { ++report_.circuitTeardowns; }

    /** Count a pseudo-circuit torn down by an availability transition. */
    void noteChurnTeardown() { ++report_.churnTeardowns; }

    bool anyLinkDead() const { return anyDead_; }
    bool linkDead(RouterId r, PortId outPort, int dropIdx) const;

    /**
     * Any link currently *unavailable* — dead (permanent) or down
     * (churn, revivable)? The cheap gate for the availability-aware
     * routing and reachability paths below.
     */
    bool anyUnavailable() const { return anyDead_ || downLinks_ > 0; }

    /** Dead or currently down. */
    bool linkUnavailable(RouterId r, PortId outPort, int dropIdx) const;

    /**
     * Does this plan ever need detour routing? True only when links can
     * die permanently (kill-link): a dead link loses flits, so packets
     * must be steered around it. Churn outages deliberately do NOT
     * reroute — a down link is lossless (flits wait in its retry buffer
     * and resume at revival), and bending packets off their dimension
     * order mid-outage would reintroduce deadlock cycles the DOR VC
     * partitions exclude. Decides whether Network wraps the routing
     * algorithm in FaultRouting.
     */
    bool needsReroute() const { return !plan_.kills.empty(); }

    /**
     * Is any currently-unavailable resource scheduled to come back —
     * a down link with a known revival cycle, or a router inside a
     * stall window? While true, the drain loop must keep stepping
     * (deferred flits resume at revival) rather than declaring the
     * network quiescent.
     */
    bool revivalPending(Cycle now) const;

    /** Bumped on every availability transition; invalidates route caches. */
    std::uint64_t rerouteGeneration() const { return generation_; }

    /** Router-level reachability over available links. */
    bool reachable(RouterId from, RouterId to) const;

    // ------------------------------------------------------------------
    // Credit loss + flow accounting.
    // ------------------------------------------------------------------

    /**
     * True = silently drop this credit delivery. Counts per router so
     * the pattern matches the PR 4 `Router::deliverCredit` hook exactly
     * (every Nth credit a given router receives).
     */
    bool dropCredit(RouterId r);

    /** Alive path from src's router to dst's router? */
    bool routable(NodeId src, NodeId dst) const;

    void onOffered(const PacketDesc &p);
    void onUnroutable(const PacketDesc &p);
    void onDelivered(const Flit &flit);

    /** Assemble the degradation report after a run. */
    FaultReport report(Cycle cyclesRun, int numNodes) const;

    const FaultPlan &plan() const { return plan_; }

    /** Effective retransmission timeout in cycles. */
    Cycle retryTimeout() const { return retryTimeout_; }

  private:
    struct RetryEntry
    {
        Flit flit;
        Cycle sentAt = 0;   ///< departure cycle of the latest transmission
    };

    /** One protected directed link with its retry machinery. */
    struct LinkState
    {
        RouterId src = kInvalidRouter;
        RouterId dst = kInvalidRouter;
        PortId outPort = kInvalidPort;   ///< at src
        int dropIdx = 0;
        PortId inPort = kInvalidPort;    ///< at dst
        int distance = 1;

        double flipProb = 0.0;
        Cycle killAt = kNeverCycle;
        bool dead = false;

        // Churn: down = unplugged (transmissions deferred, not lost).
        bool down = false;
        Cycle upAt = kNeverCycle;   ///< scheduled revival (kNeverCycle: none)

        // Sender.
        std::uint32_t nextSeq = 0;
        std::deque<RetryEntry> retryBuf;
        int retryCount = 0;
        Cycle nextFreeTx = 0;     ///< wire serialisation (departure cycles)
        Cycle lastResendAt = kNeverCycle;

        // Receiver.
        std::uint32_t expectedSeq = 0;
        Cycle nackedAt = kNeverCycle;
    };

    struct FlowCounts
    {
        std::uint64_t offered = 0;
        std::uint64_t delivered = 0;
        std::uint64_t dropped = 0;
        std::uint64_t unroutable = 0;
    };

    /** Periodic or random (MTTF/MTTR) down generator for one link. */
    struct LinkGen
    {
        int link = -1;              ///< index into links_
        Cycle upDur = 0;            ///< fixed up duration (periodic)
        Cycle downDur = 0;          ///< fixed down duration (periodic)
        Cycle mttf = 0;             ///< nonzero: random; durations drawn
        Cycle mttr = 0;
        Cycle nextDownAt = 0;
    };

    /** One-shot down window for one link. */
    struct WindowGen
    {
        int link = -1;
        Cycle from = 0;
        Cycle to = 0;
        bool fired = false;
    };

    /** Periodic stall-window generator for one router. */
    struct RouterGen
    {
        RouterId router = kInvalidRouter;
        Cycle upDur = 0;
        Cycle downDur = 0;
        Cycle nextDownAt = 0;
    };

    LinkState &linkFor(const RouterId src, const RouterId dst,
                       const char *clause);
    void transmit(LinkState &ls, RetryEntry &entry, Cycle now);
    void resendWindow(LinkState &ls, Cycle now, bool fromTimeout);
    void killLink(LinkState &ls, Cycle now);
    void recordDropped(const Flit &flit);
    void sendAck(const LinkState &ls, bool ok, std::uint32_t seq, Cycle now);
    void rebuildReachability() const;

    // Churn engine (beginCycle helpers).
    void stepChurn(Cycle now);
    void linkChurnDown(LinkState &ls, Cycle now, Cycle upAt);
    void linkChurnUp(LinkState &ls, Cycle now);
    void resumeLink(LinkState &ls, Cycle now);
    void queueTeardowns(const LinkState &ls);
    void routerChurnDown(RouterId r, Cycle now, Cycle upCycle);

    static std::uint64_t senderKey(RouterId r, PortId p, int d)
    {
        return (static_cast<std::uint64_t>(r) << 24) |
               (static_cast<std::uint64_t>(p) << 8) |
               static_cast<std::uint64_t>(d);
    }
    static std::uint64_t receiverKey(RouterId r, PortId p)
    {
        return (static_cast<std::uint64_t>(r) << 24) |
               static_cast<std::uint64_t>(p);
    }

    FaultPlan plan_;
    const Topology &topo_;
    int linkLatency_;
    int creditLatency_;
    Cycle retryTimeout_;
    Rng rng_;

    EventRing *ring_ = nullptr;
    InvariantChecker *chk_ = nullptr;

    std::vector<LinkState> links_;
    std::unordered_map<std::uint64_t, int> senderIdx_;
    std::unordered_map<std::uint64_t, int> receiverIdx_;
    std::vector<StallRouterClause> stalls_;

    // Stall hold queues (ordered maps: deterministic drain order).
    std::map<std::pair<RouterId, PortId>, std::deque<LinkEvent>> heldFlits_;
    std::map<RouterId, std::vector<LinkEvent>> heldCredits_;
    std::map<std::pair<RouterId, PortId>, Cycle> lastFlitRelease_;

    bool anyDead_ = false;
    std::uint64_t generation_ = 0;
    mutable bool reachDirty_ = false;
    mutable std::vector<char> reach_;   ///< [from * numRouters + to]

    std::vector<std::uint64_t> creditCounters_;  ///< per router

    mutable FaultReport report_;
    std::map<std::pair<NodeId, NodeId>, FlowCounts> flows_;
    std::unordered_set<PacketId> droppedPackets_;
    std::uint64_t offeredFlits_ = 0;
    std::uint64_t deliveredFlits_ = 0;

    // ------------------------------------------------------------------
    // Churn state.
    // ------------------------------------------------------------------
    Rng churnRng_;                       ///< dedicated stream (random clauses)
    std::vector<LinkGen> linkGens_;
    std::vector<WindowGen> windowGens_;
    std::vector<RouterGen> routerGens_;
    std::vector<ChurnTraceEvent> traceEvents_;   ///< sorted by cycle
    std::size_t traceCursor_ = 0;
    std::vector<int> churnLinks_;        ///< links_ indices with churn clauses
    std::vector<Cycle> routerUpAt_;      ///< pending router revivals (sorted-ish)
    std::vector<TeardownRequest> pendingTeardowns_;
    int downLinks_ = 0;                  ///< links currently down
    int downWithRevival_ = 0;            ///< down links with a finite upAt
    bool churnRouters_ = false;          ///< any router churn clause/trace
    bool churnLinkClauses_ = false;      ///< any link churn clause/trace
};

} // namespace noc

#endif // NOC_FAULT_FAULT_CONTROLLER_HPP
