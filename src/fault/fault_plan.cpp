#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/log.hpp"

namespace noc {

namespace {

/// Split `s` on `sep`, keeping empty pieces (they are syntax errors the
/// clause parser reports with context).
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s[0] == '-')
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return end && *end == '\0';
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end && *end == '\0';
}

/// "<a>><b>" -> (a, b)
bool
parseLinkPair(const std::string &s, RouterId &a, RouterId &b)
{
    const std::size_t gt = s.find('>');
    if (gt == std::string::npos)
        return false;
    std::uint64_t ua = 0;
    std::uint64_t ub = 0;
    if (!parseU64(s.substr(0, gt), ua) || !parseU64(s.substr(gt + 1), ub))
        return false;
    a = static_cast<RouterId>(ua);
    b = static_cast<RouterId>(ub);
    return true;
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec, std::string *error)
{
    FaultPlan plan;
    auto fail = [&](const std::string &msg) -> FaultPlan {
        if (error) {
            *error = msg;
            return FaultPlan{};
        }
        NOC_FATAL("bad fault plan: " + msg);
    };
    if (error)
        error->clear();
    if (spec.empty())
        return plan;

    for (const std::string &clause : split(spec, ',')) {
        if (clause.empty())
            return fail("empty clause in '" + spec + "'");

        if (clause.rfind("flip-link:", 0) == 0) {
            const std::string body = clause.substr(10);
            const std::size_t at = body.find("@p");
            FlipLinkClause c;
            if (at == std::string::npos ||
                !parseLinkPair(body.substr(0, at), c.src, c.dst) ||
                !parseDouble(body.substr(at + 2), c.prob))
                return fail("expected flip-link:<a>><b>@p<prob>, got '" +
                            clause + "'");
            if (c.prob < 0.0 || c.prob > 1.0)
                return fail("flip probability must be in [0,1], got '" +
                            clause + "'");
            // Duplicate clauses on one link used to merge silently
            // (max probability wins); that hides plan typos, so they
            // are now a hard error.
            for (const FlipLinkClause &prev : plan.flips) {
                if (prev.src == c.src && prev.dst == c.dst)
                    return fail("duplicate flip-link clause for link " +
                                std::to_string(c.src) + ">" +
                                std::to_string(c.dst));
            }
            plan.flips.push_back(c);
        } else if (clause.rfind("kill-link:", 0) == 0) {
            const std::string body = clause.substr(10);
            const std::size_t at = body.find("@cycle");
            KillLinkClause c;
            std::uint64_t cyc = 0;
            if (at == std::string::npos ||
                !parseLinkPair(body.substr(0, at), c.src, c.dst) ||
                !parseU64(body.substr(at + 6), cyc))
                return fail("expected kill-link:<a>><b>@cycle<C>, got '" +
                            clause + "'");
            c.atCycle = cyc;
            // Two kill events for the same (cycle, link) are a
            // conflict, not a merge; different cycles still combine
            // (the earliest one wins at resolution time).
            for (const KillLinkClause &prev : plan.kills) {
                if (prev.src == c.src && prev.dst == c.dst &&
                    prev.atCycle == c.atCycle)
                    return fail("duplicate kill-link event for link " +
                                std::to_string(c.src) + ">" +
                                std::to_string(c.dst) + " at cycle " +
                                std::to_string(c.atCycle));
            }
            plan.kills.push_back(c);
        } else if (clause.rfind("stall-router:", 0) == 0) {
            const std::string body = clause.substr(13);
            const std::size_t at = body.find('@');
            const std::size_t dots =
                at == std::string::npos ? std::string::npos
                                        : body.find("..", at);
            StallRouterClause c;
            std::uint64_t r = 0;
            std::uint64_t from = 0;
            std::uint64_t to = 0;
            if (at == std::string::npos || dots == std::string::npos ||
                !parseU64(body.substr(0, at), r) ||
                !parseU64(body.substr(at + 1, dots - at - 1), from) ||
                !parseU64(body.substr(dots + 2), to))
                return fail("expected stall-router:<r>@<from>..<to>, got '" +
                            clause + "'");
            c.router = static_cast<RouterId>(r);
            c.from = from;
            c.to = to;
            if (c.to < c.from)
                return fail("stall window ends before it starts in '" +
                            clause + "'");
            // Overlapping windows on one router double-count stall
            // cycles and have no meaningful combined semantics.
            for (const StallRouterClause &prev : plan.stalls) {
                if (prev.router == c.router && c.from <= prev.to &&
                    prev.from <= c.to)
                    return fail("overlapping stall windows for router " +
                                std::to_string(c.router) + " (cycle " +
                                std::to_string(std::max(c.from,
                                                        prev.from)) +
                                ")");
            }
            plan.stalls.push_back(c);
        } else if (clause.rfind("drop-credit-every=", 0) == 0) {
            if (!parseU64(clause.substr(18), plan.dropCreditEvery))
                return fail("expected drop-credit-every=<N>, got '" + clause +
                            "'");
        } else if (clause.rfind("retry-timeout=", 0) == 0) {
            std::uint64_t t = 0;
            if (!parseU64(clause.substr(14), t))
                return fail("expected retry-timeout=<N>, got '" + clause +
                            "'");
            plan.retryTimeout = t;
        } else if (clause.rfind("retry-limit=", 0) == 0) {
            std::uint64_t l = 0;
            if (!parseU64(clause.substr(12), l) || l == 0)
                return fail("expected retry-limit=<N> with N >= 1, got '" +
                            clause + "'");
            plan.retryLimit = static_cast<int>(l);
        } else {
            return fail("unknown clause '" + clause + "'");
        }
    }
    return plan;
}

} // namespace noc
