/**
 * @file
 * Input-port state: per-VC flit FIFOs and the per-VC packet state machine.
 *
 * The state machine describes the packet currently at the *front* of the
 * VC (wormhole allows several packets queued back to back in one VC FIFO;
 * transitions happen when heads arrive at an empty VC and when tails
 * depart). With buffer bypassing, flits may flow through a VC without ever
 * being enqueued; the state machine still tracks the in-flight packet.
 */

#ifndef NOC_ROUTER_INPUT_UNIT_HPP
#define NOC_ROUTER_INPUT_UNIT_HPP

#include <deque>
#include <vector>

#include "common/types.hpp"
#include "router/flit.hpp"

namespace noc {

/** A buffered flit plus the first cycle it may leave the buffer. */
struct BufferedFlit
{
    Flit flit;
    Cycle ready = 0;   ///< buffer write occupies the arrival cycle
};

class InputVc
{
  public:
    enum class State {
        Idle,        ///< no packet in progress
        WaitingVa,   ///< head at front, needs an output VC
        Active,      ///< output VC allocated; flits compete for the switch
    };

    State state() const { return state_; }
    const RouteDecision &route() const { return route_; }
    VcId outVc() const { return outVc_; }
    /** True when the allocated output VC is an EVC express channel. */
    bool outVcExpress() const { return outVcExpress_; }

    bool empty() const { return q_.empty(); }
    std::size_t occupancy() const { return q_.size(); }
    /** High-water mark of the FIFO over the whole run (heatmaps). */
    std::size_t peakOccupancy() const { return peak_; }
    const BufferedFlit &front() const { return q_.front(); }
    bool frontReady(Cycle now) const
    {
        return !q_.empty() && q_.front().ready <= now;
    }

    /** Buffer write; caller must have verified space via credits. */
    void enqueue(const Flit &flit, Cycle ready_at, int buffer_depth);

    /** Pop the front flit (switch traversal of a buffered flit). */
    Flit dequeue();

    /** Head got its output VC. */
    void activate(VcId out_vc, bool express);

    /**
     * State bookkeeping for a flit that bypassed the buffer entirely
     * (buffer bypassing, §4.B). Heads must already be activated by the
     * caller; tails return the VC to Idle.
     */
    void noteBypassedFlit(const Flit &flit);

    /** Transition WaitingVa with the given packet route (head at front). */
    void startPacket(const RouteDecision &route);

    /** Called after a tail departs: look at the next queued packet. */
    void finishPacket();

  private:
    std::deque<BufferedFlit> q_;
    std::size_t peak_ = 0;
    State state_ = State::Idle;
    RouteDecision route_;
    VcId outVc_ = kInvalidVc;
    bool outVcExpress_ = false;
};

/** One router input port: VCs plus single-cycle bypass latches. */
class InputPort
{
  public:
    InputPort(int num_vcs) : vcs_(num_vcs) {}

    InputVc &vc(VcId v) { return vcs_[v]; }
    const InputVc &vc(VcId v) const { return vcs_[v]; }
    int numVcs() const { return static_cast<int>(vcs_.size()); }

  private:
    std::vector<InputVc> vcs_;
};

} // namespace noc

#endif // NOC_ROUTER_INPUT_UNIT_HPP
