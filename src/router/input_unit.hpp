/**
 * @file
 * Input-port state: per-VC flit FIFOs and the per-VC packet state machine.
 *
 * The state machine describes the packet currently at the *front* of the
 * VC (wormhole allows several packets queued back to back in one VC FIFO;
 * transitions happen when heads arrive at an empty VC and when tails
 * depart). With buffer bypassing, flits may flow through a VC without ever
 * being enqueued; the state machine still tracks the in-flight packet.
 *
 * Flit storage is a FlitRing (vc_state.hpp). Routers bind every VC's
 * ring to arena-backed slots at construction; standalone InputVcs own
 * their storage.
 */

#ifndef NOC_ROUTER_INPUT_UNIT_HPP
#define NOC_ROUTER_INPUT_UNIT_HPP

#include <cstdint>
#include <vector>

#include "common/arena.hpp"
#include "common/log.hpp"
#include "common/types.hpp"
#include "router/flit.hpp"
#include "router/vc_state.hpp"

namespace noc {

class InputVc
{
  public:
    enum class State {
        Idle,        ///< no packet in progress
        WaitingVa,   ///< head at front, needs an output VC
        Active,      ///< output VC allocated; flits compete for the switch
    };

    State state() const { return state_; }
    const RouteDecision &route() const { return route_; }
    VcId outVc() const { return outVc_; }
    /** True when the allocated output VC is an EVC express channel. */
    bool outVcExpress() const { return outVcExpress_; }

    bool empty() const { return q_.empty(); }
    std::size_t occupancy() const { return q_.size(); }
    /** High-water mark of the FIFO over the whole run (heatmaps). */
    std::size_t peakOccupancy() const { return peak_; }
    const BufferedFlit &front() const { return q_.front(); }
    bool frontReady(Cycle now) const
    {
        return !q_.empty() && q_.front().ready <= now;
    }

    /** Bind flit storage to an external (arena) slice; see FlitRing. */
    void bindStorage(BufferedFlit *slots, int capacity)
    {
        q_.bind(slots, capacity);
    }

    /** Buffer write; caller must have verified space via credits.
     *  Inline: one call per flit-hop on the simulation hot path. */
    void
    enqueue(const Flit &flit, Cycle ready_at, int buffer_depth)
    {
        NOC_ASSERT(static_cast<int>(q_.size()) < buffer_depth,
                   "buffer overflow — credit flow control is broken");
        // If the VC was drained/idle and a head arrives, a new packet
        // starts.
        if (q_.empty() && state_ == State::Idle) {
            NOC_ASSERT(isHead(flit.type),
                       "body flit arrived at an idle, empty VC");
            startPacket(flit.route);
        }
        q_.push({flit, ready_at});
        if (q_.size() > peak_)
            peak_ = q_.size();
    }

    /** Pop the front flit (switch traversal of a buffered flit). */
    Flit
    dequeue()
    {
        NOC_ASSERT(!q_.empty(), "dequeue from empty VC");
        const Flit flit = q_.front().flit;
        q_.pop();
        if (isTail(flit.type))
            finishPacket();
        return flit;
    }

    /**
     * VA-failure memo: the output port's version() at the head's last
     * failed allocation attempt. While the port version is unchanged a
     * retry is guaranteed to fail again (only release/addCredit can flip
     * the outcome, and both bump the version), so the allocator skips it.
     */
    std::uint64_t vaFailStamp() const { return vaFailStamp_; }
    void setVaFailStamp(std::uint64_t stamp) { vaFailStamp_ = stamp; }

    /** Head got its output VC. */
    void activate(VcId out_vc, bool express);

    /**
     * State bookkeeping for a flit that bypassed the buffer entirely
     * (buffer bypassing, §4.B). Heads must already be activated by the
     * caller; tails return the VC to Idle.
     */
    void noteBypassedFlit(const Flit &flit);

    /** Transition WaitingVa with the given packet route (head at front). */
    void startPacket(const RouteDecision &route);

    /** Called after a tail departs: look at the next queued packet. */
    void finishPacket();

  private:
    /** Sentinel: no failed-VA memo (ports start at version 0). */
    static constexpr std::uint64_t kNoVaFail = ~std::uint64_t{0};

    FlitRing q_;
    std::size_t peak_ = 0;
    State state_ = State::Idle;
    RouteDecision route_;
    VcId outVc_ = kInvalidVc;
    bool outVcExpress_ = false;
    std::uint64_t vaFailStamp_ = kNoVaFail;
};

/** One router input port: VCs plus single-cycle bypass latches. */
class InputPort
{
  public:
    /** Standalone port: VCs own (and grow) their flit storage. */
    explicit InputPort(int num_vcs) : vcs_(num_vcs) {}

    /**
     * Router port: every VC is bound to `buffer_depth` contiguous
     * arena slots, so the steady-state cycle loop never allocates.
     */
    InputPort(int num_vcs, int buffer_depth, Arena &arena) : vcs_(num_vcs)
    {
        BufferedFlit *slots =
            arena.allocate<BufferedFlit>(static_cast<std::size_t>(num_vcs) *
                                         static_cast<std::size_t>(buffer_depth));
        for (int v = 0; v < num_vcs; ++v)
            vcs_[v].bindStorage(slots + static_cast<std::size_t>(v) *
                                            buffer_depth,
                                buffer_depth);
    }

    InputVc &vc(VcId v) { return vcs_[v]; }
    const InputVc &vc(VcId v) const { return vcs_[v]; }
    int numVcs() const { return static_cast<int>(vcs_.size()); }

  private:
    std::vector<InputVc> vcs_;
};

} // namespace noc

#endif // NOC_ROUTER_INPUT_UNIT_HPP
