/**
 * @file
 * Data-oriented VC flit storage.
 *
 * A FlitRing is a fixed-capacity circular FIFO of BufferedFlit slots.
 * In a router, every VC's ring is bound to a contiguous slice of one
 * arena block sized `bufferDepth` at construction — the whole input
 * side of a router is then one flat `[port][vc][slot]` array, and the
 * cycle loop never touches the heap. Credit flow control guarantees a
 * bound ring can never overflow (the enqueue-side assert fires first
 * if it somehow does).
 *
 * Default-constructed rings (unit tests, ad-hoc use) own their storage
 * and grow geometrically on demand instead; behaviour is otherwise
 * identical to the old `std::deque` backing.
 */

#ifndef NOC_ROUTER_VC_STATE_HPP
#define NOC_ROUTER_VC_STATE_HPP

#include <cstddef>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "router/flit.hpp"

namespace noc {

/** A buffered flit plus the first cycle it may leave the buffer. */
struct BufferedFlit
{
    Flit flit;
    Cycle ready = 0;   ///< buffer write occupies the arrival cycle
};

class FlitRing
{
  public:
    FlitRing() = default;

    /**
     * Bind to externally-owned storage (arena slice). Must be called
     * before any push; the ring never grows past `capacity`.
     */
    void
    bind(BufferedFlit *slots, int capacity)
    {
        NOC_ASSERT(size_ == 0, "rebinding a non-empty flit ring");
        slots_ = slots;
        cap_ = capacity;
        head_ = 0;
        external_ = true;
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return static_cast<std::size_t>(size_); }

    const BufferedFlit &
    front() const
    {
        NOC_ASSERT(size_ > 0, "front of empty flit ring");
        return slots_[head_];
    }

    void
    push(const BufferedFlit &bf)
    {
        if (size_ == cap_) {
            NOC_ASSERT(!external_,
                       "bound flit ring overflow — credit flow control "
                       "is broken");
            grow();
        }
        int tail = head_ + size_;
        if (tail >= cap_)
            tail -= cap_;
        slots_[tail] = bf;
        ++size_;
    }

    void
    pop()
    {
        NOC_ASSERT(size_ > 0, "pop from empty flit ring");
        ++head_;
        if (head_ == cap_)
            head_ = 0;
        --size_;
    }

  private:
    void
    grow()
    {
        const int next = cap_ < 4 ? 4 : cap_ * 2;
        std::vector<BufferedFlit> fresh(static_cast<std::size_t>(next));
        for (int i = 0; i < size_; ++i)
            fresh[i] = slots_[(head_ + i) % (cap_ == 0 ? 1 : cap_)];
        own_.swap(fresh);
        slots_ = own_.data();
        cap_ = next;
        head_ = 0;
    }

    std::vector<BufferedFlit> own_;   ///< backing store when self-owned
    BufferedFlit *slots_ = nullptr;
    int cap_ = 0;
    int head_ = 0;
    int size_ = 0;
    bool external_ = false;
};

} // namespace noc

#endif // NOC_ROUTER_VC_STATE_HPP
