/**
 * @file
 * Router-kernel factory: maps a configuration to a specialized
 * RouterOps table, or nullptr for the generic path.
 *
 * Specialization matrix (each cell is one FastPolicy instantiation,
 * compiled in its family's kernels_*.cpp translation unit):
 *
 *                    baseline pseudo pseudo-s pseudo-b pseudo-sb  evc
 *   mesh-dor (XY/YX)    ✓       ✓       ✓        ✓        ✓        —
 *   o1turn              ✓       ✓       ✓        ✓        ✓        —
 *   torus-dor           ✓       ✓       ✓        ✓        ✓        —
 *
 * mesh-dor covers Mesh and CMesh (same Mesh routing class). Everything
 * else — EVC, MECS, FBFLY, fault plans, oversized port/VC counts,
 * kernel=generic — falls back to the generic kernel. Selection is by
 * exact dynamic type (typeid), so wrapped routings (e.g. the fault
 * layer's perturbed routing) automatically miss and stay generic.
 */

#ifndef NOC_ROUTER_KERNELS_HPP
#define NOC_ROUTER_KERNELS_HPP

#include "common/config.hpp"

namespace noc {

struct RouterOps;
class RoutingAlgorithm;

/** Per-routing-family kernel lookups (kernels_<family>.cpp). Return
 *  nullptr for schemes the family does not specialize. */
const RouterOps *meshDorKernel(Scheme scheme);
const RouterOps *o1turnKernel(Scheme scheme);
const RouterOps *torusDorKernel(Scheme scheme);

/**
 * Select the specialized kernel for one router, or nullptr if the
 * configuration must run generic. `num_in`/`num_out` are this router's
 * port counts (the mask kernels bound them).
 */
const RouterOps *selectRouterOps(const SimConfig &cfg,
                                 const RoutingAlgorithm &routing,
                                 int num_in, int num_out);

} // namespace noc

#endif // NOC_ROUTER_KERNELS_HPP
