/**
 * @file
 * The pseudo-circuit unit: the paper's core contribution (§3, §4.A).
 *
 * One register per input port holds the most recent crossbar connection
 * (input VC, output port, drop) plus a valid bit; one history register per
 * output port holds the input port of the most recently terminated
 * pseudo-circuit (used by speculation). Termination clears the valid bit
 * but leaves the registers intact, exactly as in §3.C, which is what makes
 * speculative restoration (§4.A) possible.
 */

#ifndef NOC_ROUTER_PSEUDO_CIRCUIT_HPP
#define NOC_ROUTER_PSEUDO_CIRCUIT_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "routing/routing.hpp"
#include "telemetry/telemetry.hpp"

namespace noc {

/** Counters exposed for evaluation (Fig 8b, Fig 10). */
struct PseudoCircuitStats
{
    std::uint64_t created = 0;        ///< circuits set up by SA grants
    std::uint64_t terminatedConflict = 0;
    std::uint64_t terminatedCredit = 0;
    std::uint64_t terminatedFault = 0;  ///< torn down by a link CRC failure
    std::uint64_t speculated = 0;     ///< circuits revived speculatively
};

class PseudoCircuitUnit
{
  public:
    /** Per-input-port pseudo-circuit register (paper Fig 3a). */
    struct Register
    {
        bool valid = false;
        bool speculative = false;  ///< revived and not yet reused
        VcId inVc = kInvalidVc;
        RouteDecision route;   ///< output port + drop of the connection
    };

    /**
     * @param history_depth  entries per output-port history register.
     *   The paper uses depth 1 (a single input-port number); deeper
     *   histories let speculation fall back to older holders whose
     *   retained routes still match (extension, see ablation_history).
     */
    PseudoCircuitUnit(int num_in_ports, int num_out_ports,
                      int history_depth = 1);

    /** The register at an input port (for comparator checks). */
    const Register &at(PortId in_port) const { return regs_[in_port]; }

    /**
     * Attach an event sink; lifecycle events (create / reuse /
     * terminate / speculate and speculation hit/miss resolution) are
     * reported with this router id. Pass nullptr to detach.
     */
    void attachTelemetry(TelemetrySink *sink, RouterId router)
    {
        telem_ = sink;
        router_ = router;
    }

    /**
     * A switch-arbiter grant (inPort, inVc) -> route was made: create the
     * new pseudo-circuit and terminate every conflicting one (same input
     * port or same output port), recording termination history.
     */
    void onGrant(PortId in_port, VcId in_vc, const RouteDecision &route,
                 Cycle now = 0);

    /**
     * Terminate the circuit at `in_port` because its output ran out of
     * downstream credits (§3.C condition 2). No-op if already invalid.
     */
    void terminateForCredit(PortId in_port, Cycle now = 0);

    /**
     * Terminate the circuit at `in_port` because the upstream link
     * failed a CRC check (fault layer): the cached connection can no
     * longer be trusted, so the retransmitted stream must rebuild it
     * through the normal allocation path. No-op if already invalid.
     * Returns true when a live circuit was actually torn down.
     */
    bool terminateForFault(PortId in_port, Cycle now = 0);

    /**
     * The router moved a flit over the circuit at `in_port`: emit the
     * matching reuse event (`via_latch` marks a buffer bypass through the arrival
     * latch, otherwise an SA bypass from the buffer) and resolve a
     * pending speculative revival as a hit.
     */
    void noteReuse(PortId in_port, bool via_latch, Cycle now);

    /**
     * The input port speculation would restore onto `out_port` right
     * now (§4.A): the most recently terminated holder whose retained
     * route still targets the output and whose register is free.
     * Returns kInvalidPort when the output is busy or nothing matches.
     */
    PortId speculationCandidate(PortId out_port) const;

    /** Revive a previously terminated circuit (caller checked credit). */
    void revive(PortId in_port, Cycle now = 0);

    /**
     * Speculative restoration (§4.A): candidate lookup + revival in one
     * step (no credit check — the router layer does that). Returns the
     * revived input port or kInvalidPort.
     */
    PortId trySpeculate(PortId out_port, Cycle now = 0);

    /** True if some valid circuit drives `out_port`. */
    bool outputBusy(PortId out_port) const;

    /** Most recent history entry of an output (or kInvalidPort). */
    PortId history(PortId out_port) const
    {
        return history_[out_port].empty() ? kInvalidPort
                                          : history_[out_port].front();
    }

    const PseudoCircuitStats &stats() const { return stats_; }

  private:
    enum class TerminateCause { Conflict, Credit, Fault };

    void invalidate(PortId in_port, TerminateCause cause, Cycle now);

    std::vector<Register> regs_;     ///< [input port]
    /// [output port] -> recently terminated inputs, most recent first.
    std::vector<std::vector<PortId>> history_;
    int historyDepth_;
    PseudoCircuitStats stats_;
    TelemetrySink *telem_ = nullptr;
    RouterId router_ = kInvalidRouter;
};

} // namespace noc

#endif // NOC_ROUTER_PSEUDO_CIRCUIT_HPP
