/**
 * @file
 * Kernel instantiations for dateline dimension-order routing on the
 * torus (one FastPolicy instantiation per pseudo-circuit scheme).
 */

#include "router/kernels.hpp"
#include "router/router_pipeline.hpp"
#include "routing/policies.hpp"

namespace noc {

const RouterOps *
torusDorKernel(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:
        return &routerOpsFor<FastPolicy<Scheme::Baseline, TorusDorRoute>>();
      case Scheme::Pseudo:
        return &routerOpsFor<FastPolicy<Scheme::Pseudo, TorusDorRoute>>();
      case Scheme::PseudoS:
        return &routerOpsFor<FastPolicy<Scheme::PseudoS, TorusDorRoute>>();
      case Scheme::PseudoB:
        return &routerOpsFor<FastPolicy<Scheme::PseudoB, TorusDorRoute>>();
      case Scheme::PseudoSB:
        return &routerOpsFor<FastPolicy<Scheme::PseudoSB, TorusDorRoute>>();
      case Scheme::Evc:
        break;   // EVC requires a mesh-family topology
    }
    return nullptr;
}

} // namespace noc
