/**
 * @file
 * Round-robin arbiter, the primitive used by both stages of the
 * separable switch allocator and by the VC allocator.
 */

#ifndef NOC_ROUTER_ARBITER_HPP
#define NOC_ROUTER_ARBITER_HPP

#include <cstdint>
#include <vector>

#include "common/log.hpp"

namespace noc {

/** Index of the lowest set bit; undefined for 0. */
inline int
lowestSetBit(std::uint64_t mask)
{
    return __builtin_ctzll(mask);
}

/**
 * Rotating-priority arbiter over `size` requesters. grant() scans from
 * the slot after the last winner, so service is fair and starvation-free
 * among persistent requesters.
 */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(int size = 0) : size_(size), last_(size - 1) {}

    void resize(int size)
    {
        size_ = size;
        last_ = size - 1;
    }

    int size() const { return size_; }

    /**
     * Pick a winner among requesters (true entries). Returns the winning
     * index and updates priority, or -1 if nothing is requested.
     */
    int
    grant(const std::vector<bool> &requests)
    {
        NOC_ASSERT(static_cast<int>(requests.size()) == size_,
                   "arbiter request vector size mismatch");
        for (int i = 1; i <= size_; ++i) {
            const int idx = (last_ + i) % size_;
            if (requests[idx]) {
                last_ = idx;
                return idx;
            }
        }
        return -1;
    }

    /**
     * Mask form of grant(): bit i set ⇔ requester i is requesting.
     * Identical winner and priority update to the vector form — the
     * rotating scan "first set index after last_, wrapping" is "lowest
     * set bit above last_, else lowest set bit overall". Requires
     * size ≤ 64.
     */
    int
    grantMask(std::uint64_t requests)
    {
        if (requests == 0)
            return -1;
        std::uint64_t above = last_ + 1 >= 64
                                  ? 0
                                  : requests >> (last_ + 1) << (last_ + 1);
        const int idx =
            above != 0 ? lowestSetBit(above) : lowestSetBit(requests);
        last_ = idx;
        return idx;
    }

    /** Peek without rotating priority (for diagnostics/tests). */
    int
    peek(const std::vector<bool> &requests) const
    {
        for (int i = 1; i <= size_; ++i) {
            const int idx = (last_ + i) % size_;
            if (requests[idx])
                return idx;
        }
        return -1;
    }

  private:
    int size_;
    int last_;
};

} // namespace noc

#endif // NOC_ROUTER_ARBITER_HPP
