#include "router/vc_allocator.hpp"

#include "common/log.hpp"

namespace noc {

VcId
VcAllocator::staticVc(VcId base, int count, NodeId dst)
{
    NOC_ASSERT(count > 0, "empty VC range");
    return base + static_cast<VcId>(dst % count);
}

VcId
VcAllocator::choose(const OutputPort &port, int drop, VcId base, int count,
                    NodeId dst) const
{
    if (policy_ == VaPolicy::Static) {
        const VcId v = staticVc(base, count, dst);
        return port.vc(drop, v).owned ? kInvalidVc : v;
    }

    // Dynamic: free VC with the most credits (ties -> lowest index).
    VcId best = kInvalidVc;
    int best_credits = -1;
    for (VcId v = base; v < base + count; ++v) {
        const OutputVcState &s = port.vc(drop, v);
        if (!s.owned && s.credits > best_credits) {
            best = v;
            best_credits = s.credits;
        }
    }
    return best;
}

} // namespace noc
