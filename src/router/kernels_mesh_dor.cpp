/**
 * @file
 * Kernel instantiations for dimension-order routing on Mesh/CMesh
 * (one FastPolicy instantiation per pseudo-circuit scheme).
 */

#include "router/kernels.hpp"
#include "router/router_pipeline.hpp"
#include "routing/policies.hpp"

namespace noc {

const RouterOps *
meshDorKernel(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:
        return &routerOpsFor<FastPolicy<Scheme::Baseline, MeshDorRoute>>();
      case Scheme::Pseudo:
        return &routerOpsFor<FastPolicy<Scheme::Pseudo, MeshDorRoute>>();
      case Scheme::PseudoS:
        return &routerOpsFor<FastPolicy<Scheme::PseudoS, MeshDorRoute>>();
      case Scheme::PseudoB:
        return &routerOpsFor<FastPolicy<Scheme::PseudoB, MeshDorRoute>>();
      case Scheme::PseudoSB:
        return &routerOpsFor<FastPolicy<Scheme::PseudoSB, MeshDorRoute>>();
      case Scheme::Evc:
        break;   // EVC always runs generic
    }
    return nullptr;
}

} // namespace noc
