#include "router/flit.hpp"

#include <sstream>

namespace noc {

namespace {

const char *
typeName(FlitType t)
{
    switch (t) {
      case FlitType::Head:     return "H";
      case FlitType::Body:     return "B";
      case FlitType::Tail:     return "T";
      case FlitType::HeadTail: return "HT";
    }
    return "?";
}

} // namespace

std::string
Flit::describe() const
{
    std::ostringstream os;
    os << "flit[pkt=" << packet << ' ' << typeName(type) << ' ' << seq << '/'
       << packetSize << " src=" << src << " dst=" << dst << " vc=" << vc
       << " out=" << route.outPort << '.' << route.drop << ']';
    return os.str();
}

} // namespace noc
