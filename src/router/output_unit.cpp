#include "router/output_unit.hpp"

#include "common/log.hpp"

namespace noc {

OutputPort::OutputPort(int num_drops, int num_vcs, int buffer_depth)
    : numDrops_(num_drops), numVcs_(num_vcs)
{
    vcs_.resize(static_cast<std::size_t>(num_drops) * num_vcs);
    for (auto &vc : vcs_)
        vc.credits = buffer_depth;
}

OutputVcState &
OutputPort::vc(int drop, VcId v)
{
    NOC_ASSERT(drop >= 0 && drop < numDrops_, "drop index out of range");
    NOC_ASSERT(v >= 0 && v < numVcs_, "output VC out of range");
    return vcs_[static_cast<std::size_t>(drop) * numVcs_ + v];
}

const OutputVcState &
OutputPort::vc(int drop, VcId v) const
{
    return const_cast<OutputPort *>(this)->vc(drop, v);
}

void
OutputPort::allocate(int drop, VcId v, PortId owner_port, VcId owner_vc)
{
    OutputVcState &s = vc(drop, v);
    NOC_ASSERT(!s.owned, "double allocation of an output VC");
    s.owned = true;
    s.ownerPort = owner_port;
    s.ownerVc = owner_vc;
}

void
OutputPort::release(int drop, VcId v)
{
    OutputVcState &s = vc(drop, v);
    NOC_ASSERT(s.owned, "releasing a free output VC");
    s.owned = false;
    s.ownerPort = kInvalidPort;
    s.ownerVc = kInvalidVc;
}

void
OutputPort::addCredit(int drop, VcId v)
{
    ++vc(drop, v).credits;
}

void
OutputPort::takeCredit(int drop, VcId v)
{
    OutputVcState &s = vc(drop, v);
    NOC_ASSERT(s.credits > 0, "flit sent without a credit");
    --s.credits;
}

bool
OutputPort::anyCredit(int drop, VcId base, int count) const
{
    for (VcId v = base; v < base + count; ++v) {
        if (vc(drop, v).credits > 0)
            return true;
    }
    return false;
}

bool
OutputPort::anyFreeCreditedVc(int drop, VcId base, int count) const
{
    for (VcId v = base; v < base + count; ++v) {
        const OutputVcState &s = vc(drop, v);
        if (!s.owned && s.credits > 0)
            return true;
    }
    return false;
}

void
OutputPort::initExpress(VcId base, int count, int buffer_depth)
{
    expressBase_ = base;
    expressVcs_.assign(count, {});
    for (auto &vc : expressVcs_)
        vc.credits = buffer_depth;
}

OutputVcState &
OutputPort::expressVc(VcId v)
{
    NOC_ASSERT(hasExpress(), "no express state on this port");
    const auto idx = static_cast<std::size_t>(v - expressBase_);
    NOC_ASSERT(idx < expressVcs_.size(), "express VC out of range");
    return expressVcs_[idx];
}

const OutputVcState &
OutputPort::expressVc(VcId v) const
{
    return const_cast<OutputPort *>(this)->expressVc(v);
}

} // namespace noc
