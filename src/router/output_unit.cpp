#include "router/output_unit.hpp"

namespace noc {

OutputPort::OutputPort(int num_drops, int num_vcs, int buffer_depth)
    : numDrops_(num_drops), numVcs_(num_vcs)
{
    vcs_.resize(static_cast<std::size_t>(num_drops) * num_vcs);
    for (auto &vc : vcs_)
        vc.credits = buffer_depth;
}

bool
OutputPort::anyCredit(int drop, VcId base, int count) const
{
    for (VcId v = base; v < base + count; ++v) {
        if (vc(drop, v).credits > 0)
            return true;
    }
    return false;
}

bool
OutputPort::anyFreeCreditedVc(int drop, VcId base, int count) const
{
    for (VcId v = base; v < base + count; ++v) {
        const OutputVcState &s = vc(drop, v);
        if (!s.owned && s.credits > 0)
            return true;
    }
    return false;
}

void
OutputPort::initExpress(VcId base, int count, int buffer_depth)
{
    expressBase_ = base;
    expressVcs_.assign(count, {});
    for (auto &vc : expressVcs_)
        vc.credits = buffer_depth;
}

} // namespace noc
