#include "router/switch_allocator.hpp"

#include "common/log.hpp"

namespace noc {

SwitchAllocator::SwitchAllocator(int num_in_ports, int num_out_ports,
                                 int num_vcs)
    : numVcs_(num_vcs)
{
    inputArbs_.reserve(num_in_ports);
    for (int i = 0; i < num_in_ports; ++i)
        inputArbs_.emplace_back(num_vcs);
    outputArbs_.reserve(num_out_ports);
    for (int o = 0; o < num_out_ports; ++o)
        outputArbs_.emplace_back(num_in_ports);
}

std::vector<SaGrant>
SwitchAllocator::allocate(const std::vector<std::vector<SaRequest>> &requests)
{
    const int num_in = static_cast<int>(inputArbs_.size());
    const int num_out = static_cast<int>(outputArbs_.size());
    NOC_ASSERT(static_cast<int>(requests.size()) == num_in,
               "request matrix has wrong input-port count");

    // Stage 1: one winning VC per input port.
    struct InputWinner
    {
        VcId vc = kInvalidVc;
        PortId outPort = kInvalidPort;
        bool speculative = false;
    };
    std::vector<InputWinner> winners(num_in);
    std::vector<bool> vc_reqs(numVcs_);
    for (PortId i = 0; i < num_in; ++i) {
        NOC_ASSERT(static_cast<int>(requests[i].size()) == numVcs_,
                   "request matrix has wrong VC count");
        for (VcId v = 0; v < numVcs_; ++v)
            vc_reqs[v] = requests[i][v].valid;
        const int win = inputArbs_[i].grant(vc_reqs);
        if (win >= 0) {
            winners[i].vc = win;
            winners[i].outPort = requests[i][win].outPort;
            winners[i].speculative = requests[i][win].speculative;
        }
    }

    // Stage 2: one winning input per output port; non-speculative
    // requests have priority over speculative ones.
    std::vector<SaGrant> grants;
    std::vector<bool> in_reqs(num_in);
    for (PortId o = 0; o < num_out; ++o) {
        bool any_nonspec = false;
        for (PortId i = 0; i < num_in; ++i) {
            if (winners[i].vc != kInvalidVc && winners[i].outPort == o &&
                !winners[i].speculative) {
                any_nonspec = true;
                break;
            }
        }
        bool any = false;
        for (PortId i = 0; i < num_in; ++i) {
            in_reqs[i] = winners[i].vc != kInvalidVc &&
                winners[i].outPort == o &&
                (!any_nonspec || !winners[i].speculative);
            any = any || in_reqs[i];
        }
        if (!any)
            continue;
        const int win = outputArbs_[o].grant(in_reqs);
        NOC_ASSERT(win >= 0, "output arbiter lost a pending request");
        grants.push_back({win, winners[win].vc, o,
                          winners[win].speculative});
    }
    return grants;
}

} // namespace noc
