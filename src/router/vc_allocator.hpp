/**
 * @file
 * Output-VC selection policies (paper §5):
 *  - dynamic VA: pick the free VC with the most downstream credits;
 *  - static VA: destination-hashed VC, so all flows to one destination
 *    share the same VC everywhere, maximising pseudo-circuit reusability.
 */

#ifndef NOC_ROUTER_VC_ALLOCATOR_HPP
#define NOC_ROUTER_VC_ALLOCATOR_HPP

#include "common/config.hpp"
#include "common/types.hpp"
#include "router/output_unit.hpp"

namespace noc {

class VcAllocator
{
  public:
    explicit VcAllocator(VaPolicy policy) : policy_(policy) {}

    VaPolicy policy() const { return policy_; }

    /**
     * Choose a free output VC in [base, base+count) on (port, drop) for a
     * packet to `dst`. Returns kInvalidVc when nothing is available.
     */
    VcId choose(const OutputPort &port, int drop, VcId base, int count,
                NodeId dst) const;

    /** The VC static VA would use (free or not) — for reuse checks. */
    static VcId staticVc(VcId base, int count, NodeId dst);

  private:
    VaPolicy policy_;
};

} // namespace noc

#endif // NOC_ROUTER_VC_ALLOCATOR_HPP
