#include "router/pseudo_circuit.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace noc {

namespace {

/** Shorthand: lifecycle events share the (cycle, router, port) shape. */
TelemetryEvent
pcEvent(Cycle now, RouterId router, PortId in_port, VcId vc,
        TelemetryEventClass cls, std::uint8_t arg = 0)
{
    TelemetryEvent ev;
    ev.cycle = now;
    ev.router = router;
    ev.port = static_cast<std::int16_t>(in_port);
    ev.vc = static_cast<std::int8_t>(vc);
    ev.cls = cls;
    ev.arg = arg;
    return ev;
}

} // namespace

PseudoCircuitUnit::PseudoCircuitUnit(int num_in_ports, int num_out_ports,
                                     int history_depth)
    : regs_(num_in_ports), history_(num_out_ports),
      historyDepth_(history_depth)
{
    NOC_ASSERT(history_depth >= 1, "history depth must be positive");
}

void
PseudoCircuitUnit::onGrant(PortId in_port, VcId in_vc,
                           const RouteDecision &route, Cycle now)
{
    // Terminate any other circuit claiming the granted output port.
    for (PortId j = 0; j < static_cast<PortId>(regs_.size()); ++j) {
        if (j != in_port && regs_[j].valid &&
            regs_[j].route.outPort == route.outPort) {
            invalidate(j, TerminateCause::Conflict, now);
        }
    }
    // Overwriting this input port's circuit terminates the old one.
    if (regs_[in_port].valid && !(regs_[in_port].route == route &&
                                  regs_[in_port].inVc == in_vc)) {
        invalidate(in_port, TerminateCause::Conflict, now);
    }
    regs_[in_port].valid = true;
    regs_[in_port].speculative = false;
    regs_[in_port].inVc = in_vc;
    regs_[in_port].route = route;
    ++stats_.created;
    NOC_TELEM(telem_, pcEvent(now, router_, in_port, in_vc,
                              TelemetryEventClass::PcCreate));
}

void
PseudoCircuitUnit::terminateForCredit(PortId in_port, Cycle now)
{
    if (regs_[in_port].valid)
        invalidate(in_port, TerminateCause::Credit, now);
}

bool
PseudoCircuitUnit::terminateForFault(PortId in_port, Cycle now)
{
    if (!regs_[in_port].valid)
        return false;
    invalidate(in_port, TerminateCause::Fault, now);
    return true;
}

void
PseudoCircuitUnit::noteReuse(PortId in_port, bool via_latch, Cycle now)
{
    Register &reg = regs_[in_port];
    NOC_ASSERT(reg.valid, "reuse over an invalid pseudo-circuit");
    NOC_TELEM(telem_, pcEvent(now, router_, in_port, reg.inVc,
                              via_latch
                                  ? TelemetryEventClass::PcReuseBuffer
                                  : TelemetryEventClass::PcReuseSa));
    if (reg.speculative) {
        reg.speculative = false;
        NOC_TELEM(telem_, pcEvent(now, router_, in_port, reg.inVc,
                                  TelemetryEventClass::PcSpecHit));
    }
}

PortId
PseudoCircuitUnit::speculationCandidate(PortId out_port) const
{
    if (outputBusy(out_port))
        return kInvalidPort;
    // Most recent history entry first; an entry is eligible only if its
    // input register is free and still retains a route to this output.
    for (const PortId in_port : history_[out_port]) {
        const Register &reg = regs_[in_port];
        if (!reg.valid && reg.route.outPort == out_port)
            return in_port;
    }
    return kInvalidPort;
}

void
PseudoCircuitUnit::revive(PortId in_port, Cycle now)
{
    Register &reg = regs_[in_port];
    NOC_ASSERT(!reg.valid, "reviving a live pseudo-circuit");
    reg.valid = true;
    reg.speculative = true;
    ++stats_.speculated;
    NOC_TELEM(telem_, pcEvent(now, router_, in_port, reg.inVc,
                              TelemetryEventClass::PcSpeculate));
}

PortId
PseudoCircuitUnit::trySpeculate(PortId out_port, Cycle now)
{
    const PortId in_port = speculationCandidate(out_port);
    if (in_port == kInvalidPort)
        return kInvalidPort;
    revive(in_port, now);
    return in_port;
}

bool
PseudoCircuitUnit::outputBusy(PortId out_port) const
{
    for (const auto &reg : regs_) {
        if (reg.valid && reg.route.outPort == out_port)
            return true;
    }
    return false;
}

void
PseudoCircuitUnit::invalidate(PortId in_port, TerminateCause cause, Cycle now)
{
    Register &reg = regs_[in_port];
    NOC_ASSERT(reg.valid, "invalidating an invalid pseudo-circuit");
    reg.valid = false;
    if (reg.speculative) {
        // Revived but never carried a flit before dying again.
        reg.speculative = false;
        NOC_TELEM(telem_, pcEvent(now, router_, in_port, reg.inVc,
                                  TelemetryEventClass::PcSpecMiss));
    }
    // History register at the output remembers who held it last (§4.A);
    // with depth > 1, older holders are kept as fallback candidates.
    auto &hist = history_[reg.route.outPort];
    hist.erase(std::remove(hist.begin(), hist.end(), in_port), hist.end());
    hist.insert(hist.begin(), in_port);
    if (static_cast<int>(hist.size()) > historyDepth_)
        hist.resize(historyDepth_);
    TerminateReason reason = TerminateReason::Conflict;
    switch (cause) {
    case TerminateCause::Conflict:
        ++stats_.terminatedConflict;
        reason = TerminateReason::Conflict;
        break;
    case TerminateCause::Credit:
        ++stats_.terminatedCredit;
        reason = TerminateReason::Credit;
        break;
    case TerminateCause::Fault:
        ++stats_.terminatedFault;
        reason = TerminateReason::Fault;
        break;
    }
    NOC_TELEM(telem_, pcEvent(now, router_, in_port, reg.inVc,
                              TelemetryEventClass::PcTerminate,
                              static_cast<std::uint8_t>(reason)));
}

} // namespace noc
