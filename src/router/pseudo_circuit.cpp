#include "router/pseudo_circuit.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace noc {

PseudoCircuitUnit::PseudoCircuitUnit(int num_in_ports, int num_out_ports,
                                     int history_depth)
    : regs_(num_in_ports), history_(num_out_ports),
      historyDepth_(history_depth)
{
    NOC_ASSERT(history_depth >= 1, "history depth must be positive");
}

void
PseudoCircuitUnit::onGrant(PortId in_port, VcId in_vc,
                           const RouteDecision &route)
{
    // Terminate any other circuit claiming the granted output port.
    for (PortId j = 0; j < static_cast<PortId>(regs_.size()); ++j) {
        if (j != in_port && regs_[j].valid &&
            regs_[j].route.outPort == route.outPort) {
            invalidate(j, /*credit_cause=*/false);
        }
    }
    // Overwriting this input port's circuit terminates the old one.
    if (regs_[in_port].valid && !(regs_[in_port].route == route &&
                                  regs_[in_port].inVc == in_vc)) {
        invalidate(in_port, /*credit_cause=*/false);
    }
    regs_[in_port].valid = true;
    regs_[in_port].inVc = in_vc;
    regs_[in_port].route = route;
    ++stats_.created;
}

void
PseudoCircuitUnit::terminateForCredit(PortId in_port)
{
    if (regs_[in_port].valid)
        invalidate(in_port, /*credit_cause=*/true);
}

PortId
PseudoCircuitUnit::speculationCandidate(PortId out_port) const
{
    if (outputBusy(out_port))
        return kInvalidPort;
    // Most recent history entry first; an entry is eligible only if its
    // input register is free and still retains a route to this output.
    for (const PortId in_port : history_[out_port]) {
        const Register &reg = regs_[in_port];
        if (!reg.valid && reg.route.outPort == out_port)
            return in_port;
    }
    return kInvalidPort;
}

void
PseudoCircuitUnit::revive(PortId in_port)
{
    Register &reg = regs_[in_port];
    NOC_ASSERT(!reg.valid, "reviving a live pseudo-circuit");
    reg.valid = true;
    ++stats_.speculated;
}

PortId
PseudoCircuitUnit::trySpeculate(PortId out_port)
{
    const PortId in_port = speculationCandidate(out_port);
    if (in_port == kInvalidPort)
        return kInvalidPort;
    revive(in_port);
    return in_port;
}

bool
PseudoCircuitUnit::outputBusy(PortId out_port) const
{
    for (const auto &reg : regs_) {
        if (reg.valid && reg.route.outPort == out_port)
            return true;
    }
    return false;
}

void
PseudoCircuitUnit::invalidate(PortId in_port, bool credit_cause)
{
    Register &reg = regs_[in_port];
    NOC_ASSERT(reg.valid, "invalidating an invalid pseudo-circuit");
    reg.valid = false;
    // History register at the output remembers who held it last (§4.A);
    // with depth > 1, older holders are kept as fallback candidates.
    auto &hist = history_[reg.route.outPort];
    hist.erase(std::remove(hist.begin(), hist.end(), in_port), hist.end());
    hist.insert(hist.begin(), in_port);
    if (static_cast<int>(hist.size()) > historyDepth_)
        hist.resize(historyDepth_);
    if (credit_cause)
        ++stats_.terminatedCredit;
    else
        ++stats_.terminatedConflict;
}

} // namespace noc
