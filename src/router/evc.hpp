/**
 * @file
 * Express Virtual Channels support (Kumar et al., ISCA 2007) — the
 * comparator scheme of the paper's §7.B (Fig 14).
 *
 * Dynamic EVCs with l_max = 2: the VC space at every port is split into
 * normal VCs [0, numNormal) and express VCs [numNormal, numVcs). A head
 * with at least two remaining hops in its current dimension may acquire an
 * express VC at the router two hops downstream (the express *sink*); its
 * flits then pass the intermediate router through a latch — no buffering,
 * no arbitration — with priority over locally arbitrated traffic. Express
 * buffer credits travel two hops back on dedicated wiring.
 */

#ifndef NOC_ROUTER_EVC_HPP
#define NOC_ROUTER_EVC_HPP

#include "common/config.hpp"
#include "common/types.hpp"
#include "routing/routing.hpp"

namespace noc {

class Topology;
class Mesh;

class EvcUnit
{
  public:
    /** Disabled unit (non-EVC schemes). */
    EvcUnit();

    /** Enabled unit; requires a mesh-family topology. */
    EvcUnit(const SimConfig &cfg, const Topology &topo);

    bool enabled() const { return enabled_; }
    VcId expressBase() const { return expressBase_; }
    int numExpress() const { return numExpress_; }
    int numNormal() const { return expressBase_; }
    bool isExpressVc(VcId v) const { return enabled_ && v >= expressBase_; }

    /**
     * Remaining hops in the dimension a direction port travels, from
     * router `r` towards `dst`'s router. 0 for terminal ports.
     */
    int remainingDimHops(RouterId r, NodeId dst, PortId out_port) const;

    /** Router two hops downstream through `out_port`, or kInvalidRouter. */
    RouterId twoHopSink(RouterId r, PortId out_port) const;

    /** True if a head routed to `route` may start an express path here. */
    bool eligible(RouterId r, NodeId dst, const RouteDecision &route) const;

  private:
    bool enabled_ = false;
    const Mesh *mesh_ = nullptr;
    VcId expressBase_ = kInvalidVc;
    int numExpress_ = 0;
};

} // namespace noc

#endif // NOC_ROUTER_EVC_HPP
