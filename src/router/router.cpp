#include "router/router.hpp"

#include "common/log.hpp"
#include "routing/routing.hpp"
#include "topology/topology.hpp"
#include "verify/verify.hpp"

namespace noc {

Router::Router(const SimConfig &cfg, const Topology &topo,
               const RoutingAlgorithm &routing, RouterId id)
    : cfg_(cfg), topo_(topo), routing_(routing), id_(id),
      pc_(topo.numInputPorts(id), topo.numOutputPorts(id),
          cfg.pcHistoryDepth),
      va_(cfg.vaPolicy),
      sa_(topo.numInputPorts(id), topo.numOutputPorts(id), cfg.numVcs)
{
    const int num_in = topo.numInputPorts(id);
    const int num_out = topo.numOutputPorts(id);

    inputs_.reserve(num_in);
    for (int p = 0; p < num_in; ++p)
        inputs_.emplace_back(cfg.numVcs);

    outputs_.reserve(num_out);
    for (int p = 0; p < num_out; ++p) {
        const OutputChannel &chan = topo.output(id, p);
        const int drops = chan.isTerminal()
            ? 1
            : static_cast<int>(chan.drops.size());
        outputs_.emplace_back(drops, cfg.numVcs, cfg.bufferDepth);
    }

    if (evcEnabled()) {
        evc_ = EvcUnit(cfg, topo);
        for (int p = 0; p < num_out; ++p) {
            if (topo.output(id, p).isTerminal())
                continue;
            if (evc_.twoHopSink(id, p) != kInvalidRouter) {
                outputs_[p].initExpress(evc_.expressBase(),
                                        evc_.numExpress(), cfg.bufferDepth);
            }
        }
    }

    pendingGrants_.reserve(num_out);
    bypassLatch_.resize(num_in);
    expressLatch_.resize(num_in);
    usedIn_.assign(num_in, false);
    usedOut_.assign(num_out, false);
    lastOutPort_.assign(num_in, kInvalidPort);
}

std::pair<VcId, int>
Router::vaRange(const Flit &head) const
{
    if (evcEnabled())
        return {0, evc_.numNormal()};
    return routing_.vcRangeAt(id_, head.src, head.dst, head.cls,
                              cfg_.numVcs);
}

bool
Router::pendingUsesInput(PortId in_port) const
{
    for (const SaGrant &g : pendingGrants_) {
        if (g.inPort == in_port)
            return true;
    }
    return false;
}

bool
Router::pendingUsesOutput(PortId out_port) const
{
    for (const SaGrant &g : pendingGrants_) {
        if (g.outPort == out_port)
            return true;
    }
    return false;
}

void
Router::deliverFlit(PortId in_port, const Flit &flit, Cycle now)
{
    ++stats_.flitsArrived;
    NOC_ASSERT(flit.vc >= 0 && flit.vc < cfg_.numVcs, "flit VC out of range");

    if (evcEnabled() && flit.evcHopsLeft > 0) {
        // Express flits pass through the latch this very cycle (§7.B).
        NOC_ASSERT(!expressLatch_[in_port].has_value(),
                   "two flits on one input port in one cycle");
        expressLatch_[in_port] = flit;
        return;
    }

    if (bbEnabled() && tryBufferBypass(in_port, flit, now))
        return;

    InputVc &vc = inputs_[in_port].vc(flit.vc);
    vc.enqueue(flit, now + 1, cfg_.bufferDepth);   // BW occupies this cycle
    ++stats_.bufferWrites;
    emitTelem(TelemetryEventClass::BufferWrite, now, in_port, flit.vc);
}

void
Router::deliverCredit(const Credit &credit, Cycle now)
{
    // Credit loss injection lives in the fault layer now: the network
    // consults FaultController::dropCredit() before calling here.
    OutputPort &op = outputs_[credit.outPort];
    if (credit.express) {
        ++op.expressVc(credit.vc).credits;
        NOC_ASSERT(op.expressVc(credit.vc).credits <= cfg_.bufferDepth,
                   "express credit overflow");
    } else {
        op.addCredit(credit.drop, credit.vc);
        NOC_ASSERT(op.vc(credit.drop, credit.vc).credits <= cfg_.bufferDepth,
                   "credit overflow");
    }
    NOC_VCHK(vchk_, onCreditReturned(id_, credit.outPort, credit.drop,
                                     credit.vc, credit.express, now));
}

bool
Router::faultTeardown(PortId in_port, Cycle now)
{
    if (!pcEnabled())
        return false;
    return pc_.terminateForFault(in_port, now);
}

VcId
Router::independentVa(const Flit &head, const RouteDecision &route)
{
    const auto [base, count] = vaRange(head);
    OutputPort &op = outputs_[route.outPort];
    const VcId w = va_.choose(op, route.drop, base, count, head.dst);
    if (w == kInvalidVc || op.vc(route.drop, w).credits <= 0)
        return kInvalidVc;
    return w;
}

bool
Router::tryBufferBypass(PortId in_port, const Flit &flit, Cycle now)
{
    const PseudoCircuitUnit::Register &reg = pc_.at(in_port);
    if (!reg.valid || reg.inVc != flit.vc)
        return false;
    InputVc &vc = inputs_[in_port].vc(flit.vc);
    if (!vc.empty())
        return false;
    NOC_ASSERT(!bypassLatch_[in_port].has_value(),
               "bypass latch already holds a flit");
    // A switch grant scheduled for this cycle claims the crossbar port.
    if (pendingUsesInput(in_port) || pendingUsesOutput(reg.route.outPort))
        return false;

    OutputPort &op = outputs_[reg.route.outPort];
    if (isHead(flit.type)) {
        if (vc.state() != InputVc::State::Idle)
            return false;
        if (!(flit.route == reg.route))
            return false;
        const VcId w = independentVa(flit, reg.route);
        if (w == kInvalidVc)
            return false;
        vc.startPacket(flit.route);
        op.allocate(reg.route.drop, w, in_port, flit.vc);
        vc.activate(w, /*express=*/false);
        ++stats_.vaGrants;
        emitTelem(TelemetryEventClass::VaGrant, now, in_port, flit.vc);
    } else {
        if (vc.state() != InputVc::State::Active)
            return false;
        if (!(vc.route() == reg.route) || vc.outVcExpress())
            return false;
        if (op.vc(reg.route.drop, vc.outVc()).credits <= 0) {
            // §4.B: output out of credit before the flit arrives — the
            // circuit is terminated and the latch turned off.
            pc_.terminateForCredit(in_port, now);
            return false;
        }
    }
    bypassLatch_[in_port] = flit;
    return true;
}

void
Router::step(Cycle now)
{
    switchPhase(now);
    allocationPhase(now);
}

void
Router::switchPhase(Cycle now)
{
    usedIn_.assign(usedIn_.size(), false);
    usedOut_.assign(usedOut_.size(), false);

    // 1. EVC express latches — highest priority, preempting local grants.
    for (PortId in = 0; in < numInputPorts(); ++in) {
        if (!expressLatch_[in].has_value())
            continue;
        Flit flit = *expressLatch_[in];
        expressLatch_[in].reset();
        NOC_ASSERT(!usedIn_[in] && !usedOut_[flit.route.outPort],
                   "express flits collided in the crossbar");
        traverseExpress(in, flit, now);
    }

    // 2. Switch grants from last cycle's allocation.
    for (const SaGrant &g : pendingGrants_) {
        if (usedIn_[g.inPort] || usedOut_[g.outPort]) {
            ++stats_.wastedGrants;   // preempted by an express flit
            continue;
        }
        InputVc &vc = inputs_[g.inPort].vc(g.inVc);
        NOC_ASSERT(vc.state() == InputVc::State::Active,
                   "switch grant for an inactive VC");
        NOC_ASSERT(vc.frontReady(now), "switch grant for an absent flit");
        const RouteDecision route = vc.route();
        NOC_ASSERT(route.outPort == g.outPort, "grant/route mismatch");
        const VcId out_vc = vc.outVc();
        const bool express_out = vc.outVcExpress();
        const Flit flit = vc.dequeue();
        traverse(g.inPort, flit, route, out_vc, express_out,
                 /*from_buffer=*/true, now);
    }
    pendingGrants_.clear();

    // 3. Buffer-bypass latches (validated at arrival this cycle).
    for (PortId in = 0; in < numInputPorts(); ++in) {
        if (!bypassLatch_[in].has_value())
            continue;
        Flit flit = *bypassLatch_[in];
        bypassLatch_[in].reset();
        InputVc &vc = inputs_[in].vc(flit.vc);
        NOC_ASSERT(vc.state() == InputVc::State::Active,
                   "latched flit on an inactive VC");
        const RouteDecision route = vc.route();
        NOC_ASSERT(!usedIn_[in] && !usedOut_[route.outPort],
                   "bypass latch lost its crossbar slot");
        const VcId out_vc = vc.outVc();
        vc.noteBypassedFlit(flit);
        ++stats_.bufferBypasses;
        pc_.noteReuse(in, /*via_latch=*/true, now);
        NOC_VCHK(vchk_, onPcReuse(id_, in, flit.vc, route, flit,
                                  /*via_latch=*/true, now));
        if (isHead(flit.type))
            ++stats_.headBufferBypasses;
        traverse(in, flit, route, out_vc, /*express_out=*/false,
                 /*from_buffer=*/false, now);
    }

    // 4. Pseudo-circuit reuse straight from the buffers (SA bypass, §3.B).
    if (!pcEnabled())
        return;
    for (PortId in = 0; in < numInputPorts(); ++in) {
        const PseudoCircuitUnit::Register &reg = pc_.at(in);
        if (!reg.valid)
            continue;
        if (usedIn_[in] || usedOut_[reg.route.outPort])
            continue;
        InputVc &vc = inputs_[in].vc(reg.inVc);
        if (!vc.frontReady(now))
            continue;
        const Flit &front = vc.front().flit;

        VcId out_vc = kInvalidVc;
        if (vc.state() == InputVc::State::WaitingVa) {
            // Head reusing the circuit; VA runs independently (§3.B).
            NOC_ASSERT(isHead(front.type), "WaitingVa without a head");
            if (!(front.route == reg.route))
                continue;
            out_vc = independentVa(front, reg.route);
            if (out_vc == kInvalidVc)
                continue;
            outputs_[reg.route.outPort].allocate(reg.route.drop, out_vc,
                                                 in, reg.inVc);
            vc.activate(out_vc, /*express=*/false);
            ++stats_.vaGrants;
            emitTelem(TelemetryEventClass::VaGrant, now, in, reg.inVc);
        } else if (vc.state() == InputVc::State::Active) {
            if (!(vc.route() == reg.route) || vc.outVcExpress())
                continue;
            if (outputs_[reg.route.outPort]
                    .vc(reg.route.drop, vc.outVc()).credits <= 0) {
                // §3.C: a flit attempting a circuit whose output has no
                // credit terminates it ("the circuit guarantees credit
                // availability"); speculation may revive it once the
                // congestion clears.
                pc_.terminateForCredit(in, now);
                continue;
            }
            out_vc = vc.outVc();
        } else {
            continue;
        }

        const RouteDecision route = vc.route();
        const Flit flit = vc.dequeue();
        ++stats_.saBypasses;
        pc_.noteReuse(in, /*via_latch=*/false, now);
        NOC_VCHK(vchk_, onPcReuse(id_, in, reg.inVc, route, flit,
                                  /*via_latch=*/false, now));
        if (isHead(flit.type))
            ++stats_.headSaBypasses;
        traverse(in, flit, route, out_vc, /*express_out=*/false,
                 /*from_buffer=*/true, now);
    }
}

void
Router::allocationPhase(Cycle now)
{
    const int num_in = numInputPorts();
    const int num_vcs = cfg_.numVcs;
    const int total = num_in * num_vcs;

    // --- VA, in rotating (in, vc) order for fairness ---
    vaRotate_ = total > 0 ? (vaRotate_ + 1) % total : 0;
    for (int k = 0; k < total; ++k) {
        const int idx = (vaRotate_ + k) % total;
        const PortId in = idx / num_vcs;
        const VcId v = idx % num_vcs;
        InputVc &vc = inputs_[in].vc(v);
        if (vc.state() == InputVc::State::WaitingVa && vc.frontReady(now))
            doVa(in, v, now);
    }

    // --- speculative SA ---
    std::vector<std::vector<SaRequest>> reqs(
        num_in, std::vector<SaRequest>(num_vcs));
    for (PortId in = 0; in < num_in; ++in) {
        for (VcId v = 0; v < num_vcs; ++v) {
            const InputVc &vc = inputs_[in].vc(v);
            if (!vc.frontReady(now))
                continue;
            // Flits that will ride the standing pseudo-circuit do not
            // request SA at all (§3.B: "the following flits coming to
            // the same VC can bypass SA until the circuit is
            // terminated") — which also frees the allocator for other
            // VCs at this input port.
            if (willUseCircuit(in, v))
                continue;
            if (vc.state() == InputVc::State::Active) {
                const RouteDecision &r = vc.route();
                const int credits = vc.outVcExpress()
                    ? outputs_[r.outPort].expressVc(vc.outVc()).credits
                    : outputs_[r.outPort].vc(r.drop, vc.outVc()).credits;
                if (credits <= 0) {
                    // SA arbitrates on credit availability
                    emitTelem(TelemetryEventClass::CreditStall, now, in, v);
                    continue;
                }
                reqs[in][v] = {true, r.outPort, false};
            } else if (vc.state() == InputVc::State::WaitingVa) {
                // Head whose VA just failed: speculative request.
                reqs[in][v] = {true, vc.route().outPort, true};
            }
        }
    }
    for (const SaGrant &g : sa_.allocate(reqs)) {
        if (g.speculative) {
            ++stats_.wastedGrants;   // VA failed: crossbar slot wasted
            continue;
        }
        ++stats_.saGrants;
        emitTelem(TelemetryEventClass::SaGrant, now, g.inPort, g.inVc);
        if (pcEnabled())
            pc_.onGrant(g.inPort, g.inVc,
                        inputs_[g.inPort].vc(g.inVc).route(), now);
        NOC_VCHK(vchk_, onSaGrant(id_, g.inPort, g.inVc,
                                  inputs_[g.inPort].vc(g.inVc).route(),
                                  now));
        pendingGrants_.push_back(g);
    }

    if (pcEnabled())
        creditTerminations(now);
    if (specEnabled())
        speculate(now);
}

void
Router::doVa(PortId in_port, VcId in_vc, Cycle now)
{
    InputVc &vc = inputs_[in_port].vc(in_vc);
    const Flit &head = vc.front().flit;
    NOC_ASSERT(isHead(head.type), "VA requested by a non-head flit");
    const RouteDecision &route = vc.route();
    OutputPort &op = outputs_[route.outPort];
    NOC_ASSERT(op.connected(), "VA towards an unconnected output");

    // EVC: express VCs are preferred whenever the packet still travels at
    // least lmax hops in this dimension.
    if (evcEnabled() && op.hasExpress() &&
        evc_.eligible(id_, head.dst, route)) {
        VcId best = kInvalidVc;
        int best_credits = -1;
        for (VcId w = evc_.expressBase(); w < cfg_.numVcs; ++w) {
            const OutputVcState &s = op.expressVc(w);
            if (!s.owned && s.credits > best_credits) {
                best = w;
                best_credits = s.credits;
            }
        }
        if (best != kInvalidVc) {
            OutputVcState &s = op.expressVc(best);
            s.owned = true;
            s.ownerPort = in_port;
            s.ownerVc = in_vc;
            vc.activate(best, /*express=*/true);
            ++stats_.vaGrants;
            emitTelem(TelemetryEventClass::VaGrant, now, in_port, in_vc);
            return;
        }
    }

    const auto [base, count] = vaRange(head);
    const VcId w = va_.choose(op, route.drop, base, count, head.dst);
    if (w == kInvalidVc)
        return;
    op.allocate(route.drop, w, in_port, in_vc);
    vc.activate(w, /*express=*/false);
    ++stats_.vaGrants;
    emitTelem(TelemetryEventClass::VaGrant, now, in_port, in_vc);
}

bool
Router::willUseCircuit(PortId in_port, VcId in_vc) const
{
    if (!pcEnabled())
        return false;
    const PseudoCircuitUnit::Register &reg = pc_.at(in_port);
    if (!reg.valid || reg.inVc != in_vc)
        return false;
    const InputVc &vc = inputs_[in_port].vc(in_vc);
    if (vc.state() == InputVc::State::Active) {
        return vc.route() == reg.route && !vc.outVcExpress() &&
            outputs_[reg.route.outPort]
                    .vc(reg.route.drop, vc.outVc()).credits > 0;
    }
    if (vc.state() == InputVc::State::WaitingVa) {
        if (!(vc.front().flit.route == reg.route))
            return false;
        // The head can take the circuit only if its independent VA can
        // succeed right now; otherwise fall back to the normal pipeline.
        const auto [base, count] = vaRange(vc.front().flit);
        if (cfg_.vaPolicy == VaPolicy::Static) {
            const VcId w =
                VcAllocator::staticVc(base, count, vc.front().flit.dst);
            const OutputVcState &s =
                outputs_[reg.route.outPort].vc(reg.route.drop, w);
            return !s.owned && s.credits > 0;
        }
        return outputs_[reg.route.outPort].anyFreeCreditedVc(
            reg.route.drop, base, count);
    }
    return false;
}

void
Router::creditTerminations(Cycle now)
{
    // §3.C condition 2: a circuit towards a congested output (no credit
    // left on any VC of its drop) is torn down so backpressure can
    // propagate. A circuit in the middle of streaming a packet is left
    // alone during *transient* credit dips from the credit round trip —
    // its flits simply wait, and the arrival-time check in
    // tryBufferBypass() (§4.B) still terminates it if a latched flit
    // would have nowhere to land.
    for (PortId in = 0; in < numInputPorts(); ++in) {
        const PseudoCircuitUnit::Register &reg = pc_.at(in);
        if (!reg.valid)
            continue;
        const OutputPort &op = outputs_[reg.route.outPort];
        const InputVc &vc = inputs_[in].vc(reg.inVc);
        const bool streaming = vc.state() == InputVc::State::Active &&
            vc.route() == reg.route && !vc.outVcExpress();
        if (!streaming && !op.anyCredit(reg.route.drop, 0, cfg_.numVcs))
            pc_.terminateForCredit(in, now);
    }
}

void
Router::speculate(Cycle now)
{
    for (PortId o = 0; o < numOutputPorts(); ++o) {
        if (!outputs_[o].connected())
            continue;
        const PortId in = pc_.speculationCandidate(o);
        if (in == kInvalidPort)
            continue;
        // §4.A: never speculate towards a congested downstream router.
        if (!outputs_[o].anyCredit(pc_.at(in).route.drop, 0, cfg_.numVcs))
            continue;
        pc_.revive(in, now);
    }
}

void
Router::traverse(PortId in_port, Flit flit, const RouteDecision &route,
                 VcId out_vc, bool express_out, bool from_buffer, Cycle now)
{
    usedIn_[in_port] = true;
    usedOut_[route.outPort] = true;
    ++stats_.xbarTraversals;
    emitTelem(TelemetryEventClass::SwitchTraverse, now, in_port, flit.vc);
    if (from_buffer)
        ++stats_.bufferReads;
    if (isHead(flit.type)) {
        ++stats_.headTraversals;
        noteLocality(in_port, route.outPort);
    }

    OutputPort &op = outputs_[route.outPort];
    NOC_ASSERT(op.connected(), "switch traversal to unconnected output");
    const OutputChannel &chan = topo_.output(id_, route.outPort);
    const VcId in_vc = flit.vc;

    if (express_out) {
        // EVC source: consume an express credit of the two-hop sink.
        OutputVcState &s = op.expressVc(out_vc);
        NOC_ASSERT(s.credits > 0, "express flit sent without credit");
        --s.credits;
        NOC_VCHK(vchk_, onCreditTaken(id_, route.outPort, route.drop,
                                      out_vc, /*express=*/true, now));
        if (isTail(flit.type)) {
            NOC_ASSERT(s.owned, "tail on an unowned express VC");
            s.owned = false;
            s.ownerPort = kInvalidPort;
            s.ownerVc = kInvalidVc;
        }
        flit.vc = out_vc;
        flit.evcHopsLeft = 1;
        ++flit.hops;
        const RouterId next = chan.drops[route.drop].router;
        flit.route = routing_.route(next, flit.dst, flit.cls);
        sentFlits.push_back({route.outPort, route.drop, flit});
    } else {
        op.takeCredit(route.drop, out_vc);
        NOC_VCHK(vchk_, onCreditTaken(id_, route.outPort, route.drop,
                                      out_vc, /*express=*/false, now));
        if (isTail(flit.type))
            op.release(route.drop, out_vc);
        flit.vc = out_vc;
        ++flit.hops;
        if (!chan.isTerminal()) {
            const RouterId next = chan.drops[route.drop].router;
            flit.route = routing_.route(next, flit.dst, flit.cls);
        }
        sentFlits.push_back({route.outPort, route.drop, flit});
    }

    // Return the freed slot upstream (NI or router).
    const bool express_credit = evcEnabled() &&
        evc_.isExpressVc(in_vc) && !topo_.input(id_, in_port).isTerminal();
    sentCredits.push_back({in_port, in_vc, express_credit});
}

void
Router::traverseExpress(PortId in_port, Flit flit, Cycle now)
{
    usedIn_[in_port] = true;
    usedOut_[flit.route.outPort] = true;
    ++stats_.xbarTraversals;
    emitTelem(TelemetryEventClass::SwitchTraverse, now, in_port, flit.vc);
    ++stats_.expressBypasses;
    emitTelem(TelemetryEventClass::ExpressBypass, now, in_port, flit.vc);
    if (isHead(flit.type)) {
        ++stats_.headTraversals;
        noteLocality(in_port, flit.route.outPort);
    }

    NOC_ASSERT(flit.evcHopsLeft > 0, "express traversal without hops left");
    const OutputChannel &chan = topo_.output(id_, flit.route.outPort);
    NOC_ASSERT(!chan.isTerminal() && chan.isConnected(),
               "express flit routed off the dimension");

    --flit.evcHopsLeft;
    ++flit.hops;
    const RouteDecision cur = flit.route;
    const RouterId next = chan.drops[cur.drop].router;
    flit.route = routing_.route(next, flit.dst, flit.cls);
    sentFlits.push_back({cur.outPort, cur.drop, flit});
    // No credits here: the flit was never buffered at this router.
}

void
Router::noteLocality(PortId in_port, PortId out_port)
{
    ++stats_.localityHeads;
    if (lastOutPort_[in_port] == out_port)
        ++stats_.localityHits;
    lastOutPort_[in_port] = out_port;
}

} // namespace noc
