#include "router/router.hpp"

#include "common/log.hpp"
#include "router/kernels.hpp"
#include "router/router_pipeline.hpp"
#include "routing/routing.hpp"
#include "topology/topology.hpp"
#include "verify/verify.hpp"

namespace noc {

namespace {

/** Kernel selection at construction: a specialized kernel when the
 *  factory has one for this configuration, else the generic one. */
const RouterOps &
chooseOps(const SimConfig &cfg, const RoutingAlgorithm &routing,
          int num_in, int num_out)
{
    const RouterOps *ops = selectRouterOps(cfg, routing, num_in, num_out);
    return ops != nullptr ? *ops : routerOpsFor<GenericPolicy>();
}

} // namespace

Router::Router(const SimConfig &cfg, const Topology &topo,
               const RoutingAlgorithm &routing, RouterId id)
    : cfg_(cfg), topo_(topo), routing_(routing), id_(id),
      ops_(&chooseOps(cfg, routing, topo.numInputPorts(id),
                      topo.numOutputPorts(id))),
      pc_(topo.numInputPorts(id), topo.numOutputPorts(id),
          cfg.pcHistoryDepth),
      va_(cfg.vaPolicy),
      sa_(topo.numInputPorts(id), topo.numOutputPorts(id), cfg.numVcs)
{
    const int num_in = topo.numInputPorts(id);
    const int num_out = topo.numOutputPorts(id);

    inputs_.reserve(num_in);
    for (int p = 0; p < num_in; ++p)
        inputs_.emplace_back(cfg.numVcs, cfg.bufferDepth, arena_);

    outputs_.reserve(num_out);
    for (int p = 0; p < num_out; ++p) {
        const OutputChannel &chan = topo.output(id, p);
        const int drops = chan.isTerminal()
            ? 1
            : static_cast<int>(chan.drops.size());
        outputs_.emplace_back(drops, cfg.numVcs, cfg.bufferDepth);
    }

    if (evcEnabled()) {
        evc_ = EvcUnit(cfg, topo);
        for (int p = 0; p < num_out; ++p) {
            if (topo.output(id, p).isTerminal())
                continue;
            if (evc_.twoHopSink(id, p) != kInvalidRouter) {
                outputs_[p].initExpress(evc_.expressBase(),
                                        evc_.numExpress(), cfg.bufferDepth);
            }
        }
    }

    pendingGrants_.reserve(num_out);
    bypassLatch_.resize(num_in);
    expressLatch_.resize(num_in);
    usedIn_.assign(num_in, false);
    usedOut_.assign(num_out, false);
    lastOutPort_.assign(num_in, kInvalidPort);
}

bool
Router::pendingUsesInput(PortId in_port) const
{
    for (const SaGrant &g : pendingGrants_) {
        if (g.inPort == in_port)
            return true;
    }
    return false;
}

bool
Router::pendingUsesOutput(PortId out_port) const
{
    for (const SaGrant &g : pendingGrants_) {
        if (g.outPort == out_port)
            return true;
    }
    return false;
}

void
Router::deliverCredit(const Credit &credit, Cycle now)
{
    // Credit loss injection lives in the fault layer now: the network
    // consults FaultController::dropCredit() before calling here.
    OutputPort &op = outputs_[credit.outPort];
    if (credit.express) {
        ++op.expressVc(credit.vc).credits;
        NOC_ASSERT(op.expressVc(credit.vc).credits <= cfg_.bufferDepth,
                   "express credit overflow");
    } else {
        op.addCredit(credit.drop, credit.vc);
        NOC_ASSERT(op.vc(credit.drop, credit.vc).credits <= cfg_.bufferDepth,
                   "credit overflow");
    }
    NOC_VCHK(vchk_, onCreditReturned(id_, credit.outPort, credit.drop,
                                     credit.vc, credit.express, now));
}

bool
Router::faultTeardown(PortId in_port, Cycle now)
{
    if (!pcEnabled())
        return false;
    return pc_.terminateForFault(in_port, now);
}

void
Router::creditTerminations(Cycle now)
{
    // §3.C condition 2: a circuit towards a congested output (no credit
    // left on any VC of its drop) is torn down so backpressure can
    // propagate. A circuit in the middle of streaming a packet is left
    // alone during *transient* credit dips from the credit round trip —
    // its flits simply wait, and the arrival-time check in
    // tryBufferBypass() (§4.B) still terminates it if a latched flit
    // would have nowhere to land.
    for (PortId in = 0; in < numInputPorts(); ++in) {
        const PseudoCircuitUnit::Register &reg = pc_.at(in);
        if (!reg.valid)
            continue;
        const OutputPort &op = outputs_[reg.route.outPort];
        const InputVc &vc = inputs_[in].vc(reg.inVc);
        const bool streaming = vc.state() == InputVc::State::Active &&
            vc.route() == reg.route && !vc.outVcExpress();
        if (!streaming && !op.anyCredit(reg.route.drop, 0, cfg_.numVcs))
            pc_.terminateForCredit(in, now);
    }
}

void
Router::speculate(Cycle now)
{
    for (PortId o = 0; o < numOutputPorts(); ++o) {
        if (!outputs_[o].connected())
            continue;
        const PortId in = pc_.speculationCandidate(o);
        if (in == kInvalidPort)
            continue;
        // §4.A: never speculate towards a congested downstream router.
        if (!outputs_[o].anyCredit(pc_.at(in).route.drop, 0, cfg_.numVcs))
            continue;
        pc_.revive(in, now);
    }
}

void
Router::traverseExpress(PortId in_port, Flit flit, Cycle now)
{
    usedIn_[in_port] = true;
    usedOut_[flit.route.outPort] = true;
    ++stats_.xbarTraversals;
    emitTelem(TelemetryEventClass::SwitchTraverse, now, in_port, flit.vc);
    ++stats_.expressBypasses;
    emitTelem(TelemetryEventClass::ExpressBypass, now, in_port, flit.vc);
    if (isHead(flit.type)) {
        ++stats_.headTraversals;
        noteLocality(in_port, flit.route.outPort);
    }

    NOC_ASSERT(flit.evcHopsLeft > 0, "express traversal without hops left");
    const OutputChannel &chan = topo_.output(id_, flit.route.outPort);
    NOC_ASSERT(!chan.isTerminal() && chan.isConnected(),
               "express flit routed off the dimension");

    --flit.evcHopsLeft;
    ++flit.hops;
    const RouteDecision cur = flit.route;
    const RouterId next = chan.drops[cur.drop].router;
    flit.route = routing_.route(next, flit.dst, flit.cls);
    sentFlits.push_back({cur.outPort, cur.drop, flit});
    // No credits here: the flit was never buffered at this router.
}

void
Router::noteLocality(PortId in_port, PortId out_port)
{
    ++stats_.localityHeads;
    if (lastOutPort_[in_port] == out_port)
        ++stats_.localityHits;
    lastOutPort_[in_port] = out_port;
}

} // namespace noc
