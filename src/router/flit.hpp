/**
 * @file
 * Flits, packets and credits — the units of transfer in the network.
 *
 * A packet is split into flits by the sending network interface: a head
 * flit carrying routing state, body flits, and a tail flit (single-flit
 * packets use HeadTail). Links are 128 bits wide (paper §5): an
 * address-only packet is 1 flit, an address + 64 B cache block is 5 flits.
 */

#ifndef NOC_ROUTER_FLIT_HPP
#define NOC_ROUTER_FLIT_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "routing/routing.hpp"

namespace noc {

enum class FlitType : std::uint8_t {
    Head,
    Body,
    Tail,
    HeadTail,   ///< single-flit packet
};

inline bool
isHead(FlitType t)
{
    return t == FlitType::Head || t == FlitType::HeadTail;
}

inline bool
isTail(FlitType t)
{
    return t == FlitType::Tail || t == FlitType::HeadTail;
}

/**
 * One flit in flight. Copied by value through buffers and links; kept
 * small deliberately.
 */
struct Flit
{
    PacketId packet = 0;
    FlitType type = FlitType::Head;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::uint32_t seq = 0;        ///< flit index within the packet
    std::uint32_t packetSize = 1; ///< total flits in the packet

    int cls = 0;                  ///< routing class (O1TURN virtual network)
    VcId vc = kInvalidVc;         ///< VC at the input port it travels to/sits in
    RouteDecision route;          ///< lookahead decision for current router
    std::uint32_t tag = 0;        ///< opaque payload tag (workload models)

    Cycle createTime = 0;         ///< packet creation (source queueing incl.)
    Cycle injectTime = 0;         ///< head flit's entry into the network
    std::uint16_t hops = 0;       ///< routers traversed so far

    /// EVC: remaining express hops; >0 bypasses intermediate routers.
    std::int8_t evcHopsLeft = 0;

    bool measured = true;         ///< counts toward statistics

    // --- link-level retry protocol (fault layer; unused otherwise) ---
    std::uint32_t linkSeq = 0;    ///< per-link sequence on protected links
    bool corrupted = false;       ///< CRC would fail at the receiver

    std::string describe() const;
};

/** Description of a packet for the network interface to inject. */
struct PacketDesc
{
    PacketId id = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::uint32_t size = 1;       ///< flits
    std::uint32_t tag = 0;        ///< opaque payload tag (workload models)
    Cycle createTime = 0;
    bool measured = true;
};

/** A flow-control credit returning one buffer slot to an upstream router. */
struct Credit
{
    PortId outPort = kInvalidPort; ///< output port at the *upstream* router
    int drop = 0;                  ///< drop index on that channel
    VcId vc = kInvalidVc;
    bool express = false;          ///< EVC: credit for an express buffer
};

} // namespace noc

#endif // NOC_ROUTER_FLIT_HPP
