/**
 * @file
 * Output-port state: per-(drop, VC) credit counters and VC ownership.
 *
 * On multidrop channels (MECS) every drop-off router has its own buffers,
 * so credits and ownership are tracked per drop. Point-to-point channels
 * have exactly one drop. For EVC, express VCs of the router *two* hops
 * downstream are additionally tracked per direction channel.
 */

#ifndef NOC_ROUTER_OUTPUT_UNIT_HPP
#define NOC_ROUTER_OUTPUT_UNIT_HPP

#include <vector>

#include "common/types.hpp"

namespace noc {

/** State of one downstream virtual channel, as seen by the sender. */
struct OutputVcState
{
    int credits = 0;
    bool owned = false;
    PortId ownerPort = kInvalidPort;
    VcId ownerVc = kInvalidVc;
};

class OutputPort
{
  public:
    /**
     * @param num_drops  drop-offs on the channel (0 = unconnected port)
     * @param num_vcs    VCs per drop
     * @param buffer_depth initial credits per VC
     */
    OutputPort(int num_drops, int num_vcs, int buffer_depth);

    bool connected() const { return numDrops_ > 0; }
    int numDrops() const { return numDrops_; }
    int numVcs() const { return numVcs_; }

    OutputVcState &vc(int drop, VcId v);
    const OutputVcState &vc(int drop, VcId v) const;

    void allocate(int drop, VcId v, PortId owner_port, VcId owner_vc);
    void release(int drop, VcId v);

    /** Credit returned from the drop's router. */
    void addCredit(int drop, VcId v);

    /** Consume one credit when a flit departs. */
    void takeCredit(int drop, VcId v);

    /** True if any VC in [base, base+count) at `drop` has a credit. */
    bool anyCredit(int drop, VcId base, int count) const;

    /** True if any *free* VC in [base, base+count) at `drop` has credit. */
    bool anyFreeCreditedVc(int drop, VcId base, int count) const;

    // --- EVC express state (sink two hops downstream) ---

    /** Enable express tracking for `count` VCs starting at `base`. */
    void initExpress(VcId base, int count, int buffer_depth);
    bool hasExpress() const { return !expressVcs_.empty(); }
    OutputVcState &expressVc(VcId v);
    const OutputVcState &expressVc(VcId v) const;

  private:
    int numDrops_;
    int numVcs_;
    std::vector<OutputVcState> vcs_;        ///< [drop * numVcs + vc]
    VcId expressBase_ = kInvalidVc;
    std::vector<OutputVcState> expressVcs_; ///< [vc - expressBase]
};

} // namespace noc

#endif // NOC_ROUTER_OUTPUT_UNIT_HPP
