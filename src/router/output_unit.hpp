/**
 * @file
 * Output-port state: per-(drop, VC) credit counters and VC ownership.
 *
 * On multidrop channels (MECS) every drop-off router has its own buffers,
 * so credits and ownership are tracked per drop. Point-to-point channels
 * have exactly one drop. For EVC, express VCs of the router *two* hops
 * downstream are additionally tracked per direction channel.
 *
 * The accessors are defined inline: credit reads sit on the switch
 * allocator's per-cycle request-collection path, where an out-of-line
 * call per occupied VC is measurable.
 */

#ifndef NOC_ROUTER_OUTPUT_UNIT_HPP
#define NOC_ROUTER_OUTPUT_UNIT_HPP

#include <cstdint>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "routing/routing.hpp"

namespace noc {

/** State of one downstream virtual channel, as seen by the sender. */
struct OutputVcState
{
    int credits = 0;
    bool owned = false;
    PortId ownerPort = kInvalidPort;
    VcId ownerVc = kInvalidVc;
    /// Lookahead route stamped on the packet's head at traversal; body
    /// and tail flits copy it so one packet carries one route even when
    /// the routing function changes mid-packet (fault/churn reroutes).
    RouteDecision headLookahead;
};

class OutputPort
{
  public:
    /**
     * @param num_drops  drop-offs on the channel (0 = unconnected port)
     * @param num_vcs    VCs per drop
     * @param buffer_depth initial credits per VC
     */
    OutputPort(int num_drops, int num_vcs, int buffer_depth);

    bool connected() const { return numDrops_ > 0; }
    int numDrops() const { return numDrops_; }
    int numVcs() const { return numVcs_; }

    OutputVcState &
    vc(int drop, VcId v)
    {
        NOC_ASSERT(drop >= 0 && drop < numDrops_, "drop index out of range");
        NOC_ASSERT(v >= 0 && v < numVcs_, "output VC out of range");
        return vcs_[static_cast<std::size_t>(drop) * numVcs_ + v];
    }

    const OutputVcState &
    vc(int drop, VcId v) const
    {
        return const_cast<OutputPort *>(this)->vc(drop, v);
    }

    void
    allocate(int drop, VcId v, PortId owner_port, VcId owner_vc)
    {
        OutputVcState &s = vc(drop, v);
        NOC_ASSERT(!s.owned, "double allocation of an output VC");
        s.owned = true;
        s.ownerPort = owner_port;
        s.ownerVc = owner_vc;
    }

    void
    release(int drop, VcId v)
    {
        OutputVcState &s = vc(drop, v);
        NOC_ASSERT(s.owned, "releasing a free output VC");
        s.owned = false;
        s.ownerPort = kInvalidPort;
        s.ownerVc = kInvalidVc;
        ++version_;
    }

    /** Credit returned from the drop's router. */
    void
    addCredit(int drop, VcId v)
    {
        ++vc(drop, v).credits;
        ++version_;
    }

    /**
     * Monotonic stamp of mutations that can turn a failed VC allocation
     * into a successful one (release / addCredit). A head that failed VA
     * against this port need not retry until the stamp moves; allocate()
     * and takeCredit() only shrink the free-credited set, so they don't
     * bump it.
     */
    std::uint64_t version() const { return version_; }

    /** Consume one credit when a flit departs. */
    void
    takeCredit(int drop, VcId v)
    {
        OutputVcState &s = vc(drop, v);
        NOC_ASSERT(s.credits > 0, "flit sent without a credit");
        --s.credits;
    }

    /** True if any VC in [base, base+count) at `drop` has a credit. */
    bool anyCredit(int drop, VcId base, int count) const;

    /** True if any *free* VC in [base, base+count) at `drop` has credit. */
    bool anyFreeCreditedVc(int drop, VcId base, int count) const;

    // --- EVC express state (sink two hops downstream) ---

    /** Enable express tracking for `count` VCs starting at `base`. */
    void initExpress(VcId base, int count, int buffer_depth);
    bool hasExpress() const { return !expressVcs_.empty(); }

    OutputVcState &
    expressVc(VcId v)
    {
        NOC_ASSERT(hasExpress(), "no express state on this port");
        const auto idx = static_cast<std::size_t>(v - expressBase_);
        NOC_ASSERT(idx < expressVcs_.size(), "express VC out of range");
        return expressVcs_[idx];
    }

    const OutputVcState &
    expressVc(VcId v) const
    {
        return const_cast<OutputPort *>(this)->expressVc(v);
    }

  private:
    int numDrops_;
    int numVcs_;
    std::uint64_t version_ = 0;
    std::vector<OutputVcState> vcs_;        ///< [drop * numVcs + vc]
    VcId expressBase_ = kInvalidVc;
    std::vector<OutputVcState> expressVcs_; ///< [vc - expressBase]
};

} // namespace noc

#endif // NOC_ROUTER_OUTPUT_UNIT_HPP
