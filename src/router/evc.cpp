#include "router/evc.hpp"

#include <cstdlib>

#include "common/log.hpp"
#include "topology/mesh.hpp"

namespace noc {

EvcUnit::EvcUnit() = default;

EvcUnit::EvcUnit(const SimConfig &cfg, const Topology &topo)
{
    mesh_ = dynamic_cast<const Mesh *>(&topo);
    if (mesh_ == nullptr)
        NOC_FATAL("EVC requires a mesh-family topology");
    enabled_ = true;
    numExpress_ = cfg.evcNumExpressVcs;
    expressBase_ = cfg.numVcs - cfg.evcNumExpressVcs;
    NOC_ASSERT(expressBase_ >= 1, "EVC leaves no normal VCs");
}

int
EvcUnit::remainingDimHops(RouterId r, NodeId dst, PortId out_port) const
{
    NOC_ASSERT(enabled_, "EVC unit is disabled");
    const PortId net_base = mesh_->concentration();
    if (out_port < net_base)
        return 0;   // terminal port
    const RouterId dst_router = mesh_->nodeRouter(dst);
    const auto dir = static_cast<Mesh::Direction>(out_port - net_base);
    if (dir == Mesh::East || dir == Mesh::West)
        return std::abs(mesh_->xOf(dst_router) - mesh_->xOf(r));
    return std::abs(mesh_->yOf(dst_router) - mesh_->yOf(r));
}

RouterId
EvcUnit::twoHopSink(RouterId r, PortId out_port) const
{
    NOC_ASSERT(enabled_, "EVC unit is disabled");
    const PortId net_base = mesh_->concentration();
    if (out_port < net_base)
        return kInvalidRouter;
    const auto dir = static_cast<Mesh::Direction>(out_port - net_base);
    int x = mesh_->xOf(r);
    int y = mesh_->yOf(r);
    switch (dir) {
      case Mesh::North: y -= 2; break;
      case Mesh::East:  x += 2; break;
      case Mesh::South: y += 2; break;
      case Mesh::West:  x -= 2; break;
    }
    if (x < 0 || x >= mesh_->width() || y < 0 || y >= mesh_->height())
        return kInvalidRouter;
    return mesh_->routerAt(x, y);
}

bool
EvcUnit::eligible(RouterId r, NodeId dst, const RouteDecision &route) const
{
    if (!enabled_)
        return false;
    if (twoHopSink(r, route.outPort) == kInvalidRouter)
        return false;
    return remainingDimHops(r, dst, route.outPort) >= 2;
}

} // namespace noc
