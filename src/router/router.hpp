/**
 * @file
 * The pipelined virtual-channel router (paper §3.A, Fig 2) with the
 * pseudo-circuit scheme (§3), pseudo-circuit speculation and buffer
 * bypassing (§4), and an EVC mode (§7.B).
 *
 * Pipeline (Fig 6), in cycles of per-hop router delay:
 *   Baseline      BW | VA+SA | ST   (3)
 *   Pseudo        BW | ST          (2)   — SA bypassed on a circuit match
 *   Pseudo+B      ST               (1)   — arrival-cycle switch traversal
 * plus one link-traversal cycle per grid hop in all configurations.
 *
 * Simulation structure per cycle (driven by Network):
 *   1. deliverFlit()/deliverCredit() for everything arriving this cycle
 *      (buffer write, or bypass-latch capture);
 *   2. step(): switch-traversal phase (SA winners from the previous
 *      cycle, then latched flits, then pseudo-circuit buffered bypasses),
 *      followed by the allocation phase (VA, speculative SA,
 *      pseudo-circuit creation/termination/speculation).
 * Outputs accumulate in sentFlits/sentCredits for the caller to drain.
 *
 * Execution-kernel structure: the pipeline methods are member function
 * templates over a *policy* type (router_pipeline.hpp) that decides, at
 * compile time where possible, which scheme features are live and how
 * routing is invoked. One policy — GenericPolicy — resolves everything
 * at runtime exactly like the historical code; the FastPolicy family
 * folds the scheme to constants, devirtualizes routing, and iterates
 * VC occupancy as bit masks. A per-configuration RouterOps function
 * table, selected once at construction (router/kernels.hpp), binds the
 * public deliverFlit()/step() entry points to one instantiation. All
 * router *state* is shared between kernels — introspection (verify,
 * probes, telemetry) works identically whichever kernel runs.
 */

#ifndef NOC_ROUTER_ROUTER_HPP
#define NOC_ROUTER_ROUTER_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "router/evc.hpp"
#include "router/flit.hpp"
#include "router/input_unit.hpp"
#include "router/output_unit.hpp"
#include "router/pseudo_circuit.hpp"
#include "router/switch_allocator.hpp"
#include "router/vc_allocator.hpp"
#include "profile/profile.hpp"
#include "telemetry/telemetry.hpp"

namespace noc {

class Topology;
class RoutingAlgorithm;
class InvariantChecker;
class Router;

/**
 * One simulation kernel: the entry points of a router pipeline bound to
 * a policy instantiation. Instances are function-local statics created
 * by routerOpsFor<Policy>() (router_pipeline.hpp) and live forever.
 */
struct RouterOps
{
    std::string name;   ///< e.g. "generic", "mesh-dor/pseudo-sb"
    bool specialized = false;
    void (*deliverFlit)(Router &, PortId, const Flit &, Cycle) = nullptr;
    void (*step)(Router &, Cycle) = nullptr;
};

/** Per-router event counters (drive energy, reusability and locality). */
struct RouterStats
{
    std::uint64_t flitsArrived = 0;
    std::uint64_t bufferWrites = 0;
    std::uint64_t bufferReads = 0;
    std::uint64_t xbarTraversals = 0;
    std::uint64_t vaGrants = 0;
    std::uint64_t saGrants = 0;
    std::uint64_t saBypasses = 0;      ///< circuit reuse from the buffer
    std::uint64_t bufferBypasses = 0;  ///< circuit reuse through the latch
    std::uint64_t headTraversals = 0;  ///< head flits through the switch
    std::uint64_t headSaBypasses = 0;  ///< heads reusing from the buffer
    std::uint64_t headBufferBypasses = 0;  ///< heads through the latch
    std::uint64_t expressBypasses = 0; ///< EVC intermediate-hop traversals
    std::uint64_t wastedGrants = 0;    ///< speculation / preemption losses

    /// Crossbar-connection temporal locality (Fig 1): per-input-port
    /// consecutive packets using the same output port.
    std::uint64_t localityHeads = 0;
    std::uint64_t localityHits = 0;

    /** Flits that reused a pseudo-circuit. */
    std::uint64_t circuitReuses() const
    {
        return saBypasses + bufferBypasses;
    }
};

class Router
{
  public:
    /** A flit leaving through an output channel. */
    struct SentFlit
    {
        PortId outPort = kInvalidPort;
        int drop = 0;
        Flit flit;
    };

    /** A credit leaving upstream through an input port. */
    struct SentCredit
    {
        PortId inPort = kInvalidPort;
        VcId vc = kInvalidVc;
        bool express = false;
    };

    Router(const SimConfig &cfg, const Topology &topo,
           const RoutingAlgorithm &routing, RouterId id);

    RouterId id() const { return id_; }
    int numInputPorts() const { return static_cast<int>(inputs_.size()); }
    int numOutputPorts() const { return static_cast<int>(outputs_.size()); }
    int numVcs() const { return cfg_.numVcs; }

    /** Name of the kernel this router executes ("generic" or a
     *  specialization label); fixed at construction. */
    const std::string &kernelName() const { return ops_->name; }
    /** True when a template-specialized kernel was selected. */
    bool kernelSpecialized() const { return ops_->specialized; }

    /** Arrival of a flit on an input port at cycle `now` (phase 1). */
    void deliverFlit(PortId in_port, const Flit &flit, Cycle now)
    {
        ops_->deliverFlit(*this, in_port, flit, now);
    }

    /** Arrival of a credit for one of this router's outputs (phase 1). */
    void deliverCredit(const Credit &credit, Cycle now);

    /** One cycle of switch traversal + allocation (phase 2). */
    void step(Cycle now) { ops_->step(*this, now); }

    /**
     * Fault layer: the link feeding `in_port` rejected a flit (CRC
     * fail), so any pseudo-circuit cached at that input is stale and
     * must be rebuilt by the retransmitted stream. Returns true when a
     * live circuit was actually torn down (for teardown accounting);
     * always false for schemes without pseudo-circuits.
     */
    bool faultTeardown(PortId in_port, Cycle now);

    /**
     * Attach a telemetry sink (nullptr detaches). Pipeline-stage and
     * pseudo-circuit lifecycle events are emitted at the same points
     * the RouterStats counters increment, so event counts reconcile
     * exactly with the aggregate statistics.
     */
    void setTelemetry(TelemetrySink *sink)
    {
        telem_ = sink;
        pc_.attachTelemetry(sink, id_);
    }

    /** Attach an invariant checker (nullptr detaches). */
    void setVerifier(InvariantChecker *chk) { vchk_ = chk; }

    /** Attach a phase profiler (nullptr detaches). The fine per-phase
     *  scopes inside the pipeline run only on the profiler's sampling
     *  cycles (PhaseProfiler::fine()). */
    void setProfiler(PhaseProfiler *prof) { prof_ = prof; }

    /** Bytes the per-router arena has allocated (VC flit storage). */
    std::uint64_t arenaBytes() const { return arena_.bytesAllocated(); }
    std::uint64_t arenaChunks() const { return arena_.numChunks(); }

    /** Flits/credits produced by the latest step(); caller clears. */
    std::vector<SentFlit> sentFlits;
    std::vector<SentCredit> sentCredits;

    const RouterStats &stats() const { return stats_; }
    const PseudoCircuitStats &pcStats() const { return pc_.stats(); }
    const PseudoCircuitUnit &pcUnit() const { return pc_; }
    const InputVc &inputVc(PortId p, VcId v) const
    {
        return inputs_[p].vc(v);
    }
    const OutputPort &outputPort(PortId p) const { return outputs_[p]; }
    OutputPort &outputPortForTest(PortId p) { return outputs_[p]; }

  private:
    friend struct GenericPolicy;
    template <Scheme S, typename RP> friend struct FastPolicy;
    template <typename P> friend const RouterOps &routerOpsFor();

    // --- scheme predicates (runtime forms; policies may fold them) ---
    bool pcEnabled() const
    {
        return cfg_.scheme == Scheme::Pseudo ||
               cfg_.scheme == Scheme::PseudoS ||
               cfg_.scheme == Scheme::PseudoB ||
               cfg_.scheme == Scheme::PseudoSB;
    }
    bool specEnabled() const
    {
        return cfg_.scheme == Scheme::PseudoS ||
               cfg_.scheme == Scheme::PseudoSB;
    }
    bool bbEnabled() const
    {
        return cfg_.scheme == Scheme::PseudoB ||
               cfg_.scheme == Scheme::PseudoSB;
    }
    bool evcEnabled() const { return cfg_.scheme == Scheme::Evc; }

    bool pendingUsesInput(PortId in_port) const;
    bool pendingUsesOutput(PortId out_port) const;

    // --- templated pipeline (definitions in router_pipeline.hpp) ---

    /** VC range this head flit may be allocated into at this router
     *  (position-dependent for torus dateline classes). */
    template <typename P> std::pair<VcId, int> vaRangeT(const Flit &head)
        const;

    template <typename P> void deliverFlitT(PortId in_port,
                                            const Flit &flit, Cycle now);

    /** Try to capture an arriving flit in the buffer-bypass latch. */
    template <typename P> bool tryBufferBypassT(PortId in_port,
                                                const Flit &flit,
                                                Cycle now);

    /** Head-flit VA performed outside the allocation phase (§3.B: "VA is
     *  performed independently"); returns the granted VC or kInvalidVc. */
    template <typename P> VcId independentVaT(const Flit &head,
                                              const RouteDecision &route);

    template <typename P> void stepT(Cycle now);
    template <typename P> void switchPhaseT(Cycle now);
    template <typename P> void allocationPhaseT(Cycle now);
    template <typename P> void vaPhaseT(Cycle now);
    template <typename P> void saPhaseT(Cycle now);

    template <typename P> void doVaT(PortId in_port, VcId in_vc,
                                     Cycle now);

    /** True if this VC's front flit will traverse via the standing
     *  pseudo-circuit, so it must not request SA (§3.B). */
    template <typename P> bool willUseCircuitT(PortId in_port,
                                               VcId in_vc) const;

    /**
     * Move one flit through the crossbar onto its output channel,
     * handling credits, ownership release, lookahead routing and stats.
     * `from_buffer` distinguishes buffered flits (buffer-read energy,
     * upstream credit) from latched ones (credit only).
     */
    template <typename P> void traverseT(PortId in_port, Flit flit,
                                         const RouteDecision &route,
                                         VcId out_vc, bool express_out,
                                         bool from_buffer, Cycle now);

    /** Dequeue the front flit of a VC, maintaining the occupancy mask
     *  for mask-iterating kernels. */
    template <typename P> Flit dequeueTrackedT(PortId in_port, VcId in_vc);

    /** Non-speculative SA grant bookkeeping shared by both SA stages. */
    template <typename P> void processSaGrantT(const SaGrant &g,
                                               Cycle now);

    // --- non-templated pieces (policy-independent) ---

    /** EVC: move an express flit through the intermediate-hop latch. */
    void traverseExpress(PortId in_port, Flit flit, Cycle now);

    void creditTerminations(Cycle now);
    void speculate(Cycle now);
    void noteLocality(PortId in_port, PortId out_port);

    /** Telemetry emit helper; no-op without an attached sink. */
    void emitTelem(TelemetryEventClass cls, Cycle now, PortId port,
                   VcId vc, std::uint8_t arg = 0) const
    {
#if NOC_TELEMETRY_ENABLED
        if (telem_) {
            TelemetryEvent ev;
            ev.cycle = now;
            ev.router = id_;
            ev.port = static_cast<std::int16_t>(port);
            ev.vc = static_cast<std::int8_t>(vc);
            ev.cls = cls;
            ev.arg = arg;
            telem_->record(ev);
        }
#else
        (void)cls; (void)now; (void)port; (void)vc; (void)arg;
#endif
    }

    const SimConfig cfg_;
    const Topology &topo_;
    const RoutingAlgorithm &routing_;
    const RouterId id_;
    const RouterOps *ops_;

    /// Backs every VC's flit-slot storage (one contiguous
    /// [port][vc][slot] block); must outlive inputs_, hence declared
    /// before it.
    Arena arena_;

    std::vector<InputPort> inputs_;
    std::vector<OutputPort> outputs_;
    PseudoCircuitUnit pc_;
    EvcUnit evc_;
    VcAllocator va_;
    SwitchAllocator sa_;

    std::vector<SaGrant> pendingGrants_;          ///< execute next cycle
    std::vector<std::optional<Flit>> bypassLatch_;  ///< per input port
    std::vector<std::optional<Flit>> expressLatch_; ///< per input port
    std::vector<bool> usedIn_;
    std::vector<bool> usedOut_;
    int vaRotate_ = 0;

    /// Bit (in_port * numVcs + vc) set ⇔ that VC's FIFO is non-empty.
    /// Maintained (and meaningful) only under mask-iterating kernels,
    /// which require numInputPorts * numVcs ≤ 64.
    std::uint64_t occMask_ = 0;

    std::vector<PortId> lastOutPort_;  ///< per input port, for locality

    RouterStats stats_;
    TelemetrySink *telem_ = nullptr;
    InvariantChecker *vchk_ = nullptr;
    PhaseProfiler *prof_ = nullptr;      ///< attached profiler (may be null)
    PhaseProfiler *fineProf_ = nullptr;  ///< non-null on sampling cycles only
};

} // namespace noc

#endif // NOC_ROUTER_ROUTER_HPP
