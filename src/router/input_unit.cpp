#include "router/input_unit.hpp"

#include "common/log.hpp"

namespace noc {

void
InputVc::enqueue(const Flit &flit, Cycle ready_at, int buffer_depth)
{
    NOC_ASSERT(static_cast<int>(q_.size()) < buffer_depth,
               "buffer overflow — credit flow control is broken");
    // If the VC was drained/idle and a head arrives, a new packet starts.
    if (q_.empty() && state_ == State::Idle) {
        NOC_ASSERT(isHead(flit.type),
                   "body flit arrived at an idle, empty VC");
        startPacket(flit.route);
    }
    q_.push_back({flit, ready_at});
    if (q_.size() > peak_)
        peak_ = q_.size();
}

Flit
InputVc::dequeue()
{
    NOC_ASSERT(!q_.empty(), "dequeue from empty VC");
    const Flit flit = q_.front().flit;
    q_.pop_front();
    if (isTail(flit.type))
        finishPacket();
    return flit;
}

void
InputVc::activate(VcId out_vc, bool express)
{
    NOC_ASSERT(state_ == State::WaitingVa, "activate without pending VA");
    state_ = State::Active;
    outVc_ = out_vc;
    outVcExpress_ = express;
}

void
InputVc::noteBypassedFlit(const Flit &flit)
{
    NOC_ASSERT(q_.empty(), "buffer bypass with a non-empty VC buffer");
    NOC_ASSERT(state_ == State::Active, "bypassed flit on inactive VC");
    if (isTail(flit.type))
        finishPacket();
}

void
InputVc::startPacket(const RouteDecision &route)
{
    NOC_ASSERT(state_ == State::Idle, "packet start on busy VC");
    state_ = State::WaitingVa;
    route_ = route;
    outVc_ = kInvalidVc;
    outVcExpress_ = false;
}

void
InputVc::finishPacket()
{
    state_ = State::Idle;
    outVc_ = kInvalidVc;
    outVcExpress_ = false;
    if (!q_.empty()) {
        const Flit &next = q_.front().flit;
        NOC_ASSERT(isHead(next.type),
                   "non-head flit behind a tail in a VC FIFO");
        startPacket(next.route);
    }
}

} // namespace noc
