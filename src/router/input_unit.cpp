#include "router/input_unit.hpp"

#include "common/log.hpp"

namespace noc {

void
InputVc::activate(VcId out_vc, bool express)
{
    NOC_ASSERT(state_ == State::WaitingVa, "activate without pending VA");
    state_ = State::Active;
    outVc_ = out_vc;
    outVcExpress_ = express;
}

void
InputVc::noteBypassedFlit(const Flit &flit)
{
    NOC_ASSERT(q_.empty(), "buffer bypass with a non-empty VC buffer");
    NOC_ASSERT(state_ == State::Active, "bypassed flit on inactive VC");
    if (isTail(flit.type))
        finishPacket();
}

void
InputVc::startPacket(const RouteDecision &route)
{
    NOC_ASSERT(state_ == State::Idle, "packet start on busy VC");
    state_ = State::WaitingVa;
    route_ = route;
    outVc_ = kInvalidVc;
    outVcExpress_ = false;
    vaFailStamp_ = kNoVaFail;
}

void
InputVc::finishPacket()
{
    state_ = State::Idle;
    outVc_ = kInvalidVc;
    outVcExpress_ = false;
    if (!q_.empty()) {
        const Flit &next = q_.front().flit;
        NOC_ASSERT(isHead(next.type),
                   "non-head flit behind a tail in a VC FIFO");
        startPacket(next.route);
    }
}

} // namespace noc
