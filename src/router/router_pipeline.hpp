/**
 * @file
 * Policy types and member-template definitions of the router pipeline.
 *
 * This header is the single source of truth for the router's cycle
 * behaviour. It is included only by the translation units that
 * instantiate kernels (router.cpp for the generic kernel, the
 * router/kernels_*.cpp files for the specialized ones); everything else
 * uses router.hpp.
 *
 * Two policy families:
 *
 *  - GenericPolicy resolves every decision at runtime: scheme
 *    predicates read the config, routing goes through the virtual
 *    RoutingAlgorithm interface, and the allocation loops iterate all
 *    (port, vc) pairs. This reproduces the historical router behaviour
 *    exactly and handles every configuration (EVC, MECS, FBFLY, fault
 *    plans, any port/VC count).
 *
 *  - FastPolicy<Scheme, RoutePolicy> folds the scheme to compile-time
 *    constants (dead feature code is removed by `if constexpr` /
 *    constant propagation), devirtualizes routing through an inlined
 *    route policy (routing/policies.hpp), and walks VC occupancy and
 *    switch-allocation candidates as bit masks. Requires
 *    numInputPorts * numVcs ≤ 64, numVcs ≤ 16, numOutputPorts ≤ 64,
 *    no EVC, no fault layer (enforced by the kernel factory,
 *    router/kernels.hpp).
 *
 * Parity contract: for any sequence of deliverFlit/deliverCredit/step
 * calls, every policy produces identical router state, stats,
 * telemetry events (same order), verifier callbacks and sent
 * flits/credits. The mask loops visit candidates in provably the same
 * order as the generic loops (see the comments at each loop), and the
 * mask arbiter entry points drive the same rotating-priority state as
 * the vector forms.
 */

#ifndef NOC_ROUTER_ROUTER_PIPELINE_HPP
#define NOC_ROUTER_ROUTER_PIPELINE_HPP

#include <string>

#include "common/log.hpp"
#include "router/router.hpp"
#include "routing/routing.hpp"
#include "topology/topology.hpp"
#include "verify/verify.hpp"

namespace noc {

/** Kernel-label fragment for a scheme. */
inline const char *
schemeSlug(Scheme s)
{
    switch (s) {
      case Scheme::Baseline: return "baseline";
      case Scheme::Pseudo:   return "pseudo";
      case Scheme::PseudoS:  return "pseudo-s";
      case Scheme::PseudoB:  return "pseudo-b";
      case Scheme::PseudoSB: return "pseudo-sb";
      case Scheme::Evc:      return "evc";
    }
    return "?";
}

/** The runtime-dispatched kernel policy (see file comment). */
struct GenericPolicy
{
    static constexpr bool kMasks = false;
    static constexpr bool kEvcPossible = true;
    static constexpr bool kSpecialized = false;

    static bool pc(const Router &r) { return r.pcEnabled(); }
    static bool spec(const Router &r) { return r.specEnabled(); }
    static bool bb(const Router &r) { return r.bbEnabled(); }
    static bool evc(const Router &r) { return r.evcEnabled(); }

    static RouteDecision
    route(const Router &r, RouterId at, NodeId dst, int cls)
    {
        return r.routing_.route(at, dst, cls);
    }

    static std::pair<VcId, int>
    vcRangeAt(const Router &r, NodeId src, NodeId dst, int cls)
    {
        return r.routing_.vcRangeAt(r.id_, src, dst, cls, r.cfg_.numVcs);
    }

    static std::string kernelName() { return "generic"; }
};

/** A compile-time-specialized kernel policy (see file comment). */
template <Scheme S, typename RP>
struct FastPolicy
{
    static constexpr bool kMasks = true;
    static constexpr bool kEvcPossible = false;
    static constexpr bool kSpecialized = true;

    static constexpr bool
    pc(const Router &)
    {
        return S == Scheme::Pseudo || S == Scheme::PseudoS ||
               S == Scheme::PseudoB || S == Scheme::PseudoSB;
    }
    static constexpr bool
    spec(const Router &)
    {
        return S == Scheme::PseudoS || S == Scheme::PseudoSB;
    }
    static constexpr bool
    bb(const Router &)
    {
        return S == Scheme::PseudoB || S == Scheme::PseudoSB;
    }
    static constexpr bool evc(const Router &) { return false; }

    /** The concrete routing object; exact dynamic type was verified by
     *  the kernel factory with typeid before this policy was chosen. */
    static const typename RP::Algo &
    algo(const Router &r)
    {
        return static_cast<const typename RP::Algo &>(r.routing_);
    }

    static RouteDecision
    route(const Router &r, RouterId at, NodeId dst, int cls)
    {
        return RP::route(algo(r), at, dst, cls);
    }

    static std::pair<VcId, int>
    vcRangeAt(const Router &r, NodeId src, NodeId dst, int cls)
    {
        return RP::vcRangeAt(algo(r), r.id_, src, dst, cls, r.cfg_.numVcs);
    }

    static std::string
    kernelName()
    {
        return std::string(RP::kName) + "/" + schemeSlug(S);
    }
};

/** The function table binding Router's entry points to one policy. */
template <typename P>
const RouterOps &
routerOpsFor()
{
    static const RouterOps ops{
        P::kernelName(),
        P::kSpecialized,
        [](Router &r, PortId in_port, const Flit &flit, Cycle now) {
            r.template deliverFlitT<P>(in_port, flit, now);
        },
        [](Router &r, Cycle now) { r.template stepT<P>(now); },
    };
    return ops;
}

// ---------------------------------------------------------------------
// Pipeline member templates
// ---------------------------------------------------------------------

template <typename P>
std::pair<VcId, int>
Router::vaRangeT(const Flit &head) const
{
    if (P::evc(*this))
        return {0, evc_.numNormal()};
    return P::vcRangeAt(*this, head.src, head.dst, head.cls);
}

template <typename P>
void
Router::deliverFlitT(PortId in_port, const Flit &flit, Cycle now)
{
    ++stats_.flitsArrived;
    NOC_ASSERT(flit.vc >= 0 && flit.vc < cfg_.numVcs, "flit VC out of range");

    if (P::evc(*this) && flit.evcHopsLeft > 0) {
        // Express flits pass through the latch this very cycle (§7.B).
        NOC_ASSERT(!expressLatch_[in_port].has_value(),
                   "two flits on one input port in one cycle");
        expressLatch_[in_port] = flit;
        return;
    }

    if (P::bb(*this) && tryBufferBypassT<P>(in_port, flit, now))
        return;

    InputVc &vc = inputs_[in_port].vc(flit.vc);
    vc.enqueue(flit, now + 1, cfg_.bufferDepth);   // BW occupies this cycle
    if constexpr (P::kMasks)
        occMask_ |= 1ull << (in_port * cfg_.numVcs + flit.vc);
    ++stats_.bufferWrites;
    emitTelem(TelemetryEventClass::BufferWrite, now, in_port, flit.vc);
}

template <typename P>
VcId
Router::independentVaT(const Flit &head, const RouteDecision &route)
{
    const auto [base, count] = vaRangeT<P>(head);
    OutputPort &op = outputs_[route.outPort];
    const VcId w = va_.choose(op, route.drop, base, count, head.dst);
    if (w == kInvalidVc || op.vc(route.drop, w).credits <= 0)
        return kInvalidVc;
    return w;
}

template <typename P>
bool
Router::tryBufferBypassT(PortId in_port, const Flit &flit, Cycle now)
{
    const PseudoCircuitUnit::Register &reg = pc_.at(in_port);
    if (!reg.valid || reg.inVc != flit.vc)
        return false;
    InputVc &vc = inputs_[in_port].vc(flit.vc);
    if (!vc.empty())
        return false;
    NOC_ASSERT(!bypassLatch_[in_port].has_value(),
               "bypass latch already holds a flit");
    // A switch grant scheduled for this cycle claims the crossbar port.
    if (pendingUsesInput(in_port) || pendingUsesOutput(reg.route.outPort))
        return false;

    OutputPort &op = outputs_[reg.route.outPort];
    if (isHead(flit.type)) {
        if (vc.state() != InputVc::State::Idle)
            return false;
        if (!(flit.route == reg.route))
            return false;
        const VcId w = independentVaT<P>(flit, reg.route);
        if (w == kInvalidVc)
            return false;
        vc.startPacket(flit.route);
        op.allocate(reg.route.drop, w, in_port, flit.vc);
        vc.activate(w, /*express=*/false);
        ++stats_.vaGrants;
        emitTelem(TelemetryEventClass::VaGrant, now, in_port, flit.vc);
    } else {
        if (vc.state() != InputVc::State::Active)
            return false;
        if (!(vc.route() == reg.route) || vc.outVcExpress())
            return false;
        if (op.vc(reg.route.drop, vc.outVc()).credits <= 0) {
            // §4.B: output out of credit before the flit arrives — the
            // circuit is terminated and the latch turned off.
            pc_.terminateForCredit(in_port, now);
            return false;
        }
    }
    bypassLatch_[in_port] = flit;
    return true;
}

template <typename P>
Flit
Router::dequeueTrackedT(PortId in_port, VcId in_vc)
{
    InputVc &vc = inputs_[in_port].vc(in_vc);
    const Flit flit = vc.dequeue();
    if constexpr (P::kMasks) {
        if (vc.empty())
            occMask_ &= ~(1ull << (in_port * cfg_.numVcs + in_vc));
    }
    return flit;
}

template <typename P>
void
Router::stepT(Cycle now)
{
#if NOC_PROFILE_ENABLED
    // Latch the fine profiler once per step: null on non-sampled cycles,
    // so every scope below degrades to a single pointer test.
    fineProf_ = prof_ ? prof_->fine() : nullptr;
#endif
    {
        NOC_PROF_SCOPE(fineProf_, SwitchTraversal);
        switchPhaseT<P>(now);
    }
    allocationPhaseT<P>(now);
}

template <typename P>
void
Router::switchPhaseT(Cycle now)
{
    usedIn_.assign(usedIn_.size(), false);
    usedOut_.assign(usedOut_.size(), false);

    // 1. EVC express latches — highest priority, preempting local grants.
    if constexpr (P::kEvcPossible) {
        for (PortId in = 0; in < numInputPorts(); ++in) {
            if (!expressLatch_[in].has_value())
                continue;
            Flit flit = *expressLatch_[in];
            expressLatch_[in].reset();
            NOC_ASSERT(!usedIn_[in] && !usedOut_[flit.route.outPort],
                       "express flits collided in the crossbar");
            traverseExpress(in, flit, now);
        }
    }

    // 2. Switch grants from last cycle's allocation.
    for (const SaGrant &g : pendingGrants_) {
        if (usedIn_[g.inPort] || usedOut_[g.outPort]) {
            ++stats_.wastedGrants;   // preempted by an express flit
            continue;
        }
        InputVc &vc = inputs_[g.inPort].vc(g.inVc);
        NOC_ASSERT(vc.state() == InputVc::State::Active,
                   "switch grant for an inactive VC");
        NOC_ASSERT(vc.frontReady(now), "switch grant for an absent flit");
        const RouteDecision route = vc.route();
        NOC_ASSERT(route.outPort == g.outPort, "grant/route mismatch");
        const VcId out_vc = vc.outVc();
        const bool express_out = vc.outVcExpress();
        const Flit flit = dequeueTrackedT<P>(g.inPort, g.inVc);
        traverseT<P>(g.inPort, flit, route, out_vc, express_out,
                     /*from_buffer=*/true, now);
    }
    pendingGrants_.clear();

    // 3. Buffer-bypass latches (validated at arrival this cycle).
    for (PortId in = 0; in < numInputPorts(); ++in) {
        if (!bypassLatch_[in].has_value())
            continue;
        Flit flit = *bypassLatch_[in];
        bypassLatch_[in].reset();
        InputVc &vc = inputs_[in].vc(flit.vc);
        NOC_ASSERT(vc.state() == InputVc::State::Active,
                   "latched flit on an inactive VC");
        const RouteDecision route = vc.route();
        NOC_ASSERT(!usedIn_[in] && !usedOut_[route.outPort],
                   "bypass latch lost its crossbar slot");
        const VcId out_vc = vc.outVc();
        vc.noteBypassedFlit(flit);
        ++stats_.bufferBypasses;
        pc_.noteReuse(in, /*via_latch=*/true, now);
        NOC_VCHK(vchk_, onPcReuse(id_, in, flit.vc, route, flit,
                                  /*via_latch=*/true, now));
        if (isHead(flit.type))
            ++stats_.headBufferBypasses;
        traverseT<P>(in, flit, route, out_vc, /*express_out=*/false,
                     /*from_buffer=*/false, now);
    }

    // 4. Pseudo-circuit reuse straight from the buffers (SA bypass, §3.B).
    if (!P::pc(*this))
        return;
    for (PortId in = 0; in < numInputPorts(); ++in) {
        const PseudoCircuitUnit::Register &reg = pc_.at(in);
        if (!reg.valid)
            continue;
        if (usedIn_[in] || usedOut_[reg.route.outPort])
            continue;
        InputVc &vc = inputs_[in].vc(reg.inVc);
        if (!vc.frontReady(now))
            continue;
        const Flit &front = vc.front().flit;

        VcId out_vc = kInvalidVc;
        if (vc.state() == InputVc::State::WaitingVa) {
            // Head reusing the circuit; VA runs independently (§3.B).
            NOC_ASSERT(isHead(front.type), "WaitingVa without a head");
            if (!(front.route == reg.route))
                continue;
            out_vc = independentVaT<P>(front, reg.route);
            if (out_vc == kInvalidVc)
                continue;
            outputs_[reg.route.outPort].allocate(reg.route.drop, out_vc,
                                                 in, reg.inVc);
            vc.activate(out_vc, /*express=*/false);
            ++stats_.vaGrants;
            emitTelem(TelemetryEventClass::VaGrant, now, in, reg.inVc);
        } else if (vc.state() == InputVc::State::Active) {
            if (!(vc.route() == reg.route) || vc.outVcExpress())
                continue;
            if (outputs_[reg.route.outPort]
                    .vc(reg.route.drop, vc.outVc()).credits <= 0) {
                // §3.C: a flit attempting a circuit whose output has no
                // credit terminates it ("the circuit guarantees credit
                // availability"); speculation may revive it once the
                // congestion clears.
                pc_.terminateForCredit(in, now);
                continue;
            }
            out_vc = vc.outVc();
        } else {
            continue;
        }

        const RouteDecision route = vc.route();
        const Flit flit = dequeueTrackedT<P>(in, reg.inVc);
        ++stats_.saBypasses;
        pc_.noteReuse(in, /*via_latch=*/false, now);
        NOC_VCHK(vchk_, onPcReuse(id_, in, reg.inVc, route, flit,
                                  /*via_latch=*/false, now));
        if (isHead(flit.type))
            ++stats_.headSaBypasses;
        traverseT<P>(in, flit, route, out_vc, /*express_out=*/false,
                     /*from_buffer=*/true, now);
    }
}

template <typename P>
void
Router::processSaGrantT(const SaGrant &g, Cycle now)
{
    if (g.speculative) {
        ++stats_.wastedGrants;   // VA failed: crossbar slot wasted
        return;
    }
    ++stats_.saGrants;
    emitTelem(TelemetryEventClass::SaGrant, now, g.inPort, g.inVc);
    if (P::pc(*this))
        pc_.onGrant(g.inPort, g.inVc,
                    inputs_[g.inPort].vc(g.inVc).route(), now);
    NOC_VCHK(vchk_, onSaGrant(id_, g.inPort, g.inVc,
                              inputs_[g.inPort].vc(g.inVc).route(),
                              now));
    pendingGrants_.push_back(g);
}

template <typename P>
void
Router::allocationPhaseT(Cycle now)
{
    {
        NOC_PROF_SCOPE(fineProf_, VcAlloc);
        vaPhaseT<P>(now);
    }
    NOC_PROF_SCOPE(fineProf_, SwitchAlloc);
    saPhaseT<P>(now);
}

/** The VA half of the allocation phase (split out so the profiler can
 *  scope VA and SA separately). */
template <typename P>
void
Router::vaPhaseT(Cycle now)
{
    const int num_in = numInputPorts();
    const int num_vcs = cfg_.numVcs;
    const int total = num_in * num_vcs;

    // --- VA, in rotating (in, vc) order for fairness ---
    vaRotate_ = total > 0 ? (vaRotate_ + 1) % total : 0;
    if constexpr (P::kMasks) {
        // Same visitation as the generic "(vaRotate_ + k) % total" loop:
        // occupied indices ≥ vaRotate_ ascending, then the wrapped ones
        // < vaRotate_ ascending. Empty VCs cannot pass the frontReady
        // check, so skipping them is invisible. Bits are decoded per
        // input port (sub-mask shift per port, ctz per bit) instead of
        // dividing every set bit by num_vcs — an integer division per
        // occupied VC is the single hottest instruction of the phase.
        std::uint64_t m = occMask_ >> vaRotate_ << vaRotate_;
        for (int pass = 0; pass < 2; ++pass) {
            int base = 0;
            for (PortId in = 0; in < num_in; ++in, base += num_vcs) {
                const std::uint64_t above = m >> base;
                if (above == 0)
                    break;   // no occupied VC at this port or any later one
                std::uint64_t sub = above & ((1ull << num_vcs) - 1);
                while (sub != 0) {
                    const VcId v = lowestSetBit(sub);
                    sub &= sub - 1;
                    InputVc &vc = inputs_[in].vc(v);
                    if (vc.state() == InputVc::State::WaitingVa &&
                        vc.frontReady(now))
                        doVaT<P>(in, v, now);
                }
            }
            m = occMask_ & ((1ull << vaRotate_) - 1);
        }
    } else {
        for (int k = 0; k < total; ++k) {
            const int idx = (vaRotate_ + k) % total;
            const PortId in = idx / num_vcs;
            const VcId v = idx % num_vcs;
            InputVc &vc = inputs_[in].vc(v);
            if (vc.state() == InputVc::State::WaitingVa &&
                vc.frontReady(now))
                doVaT<P>(in, v, now);
        }
    }
}

/** The SA half of the allocation phase: speculative switch allocation,
 *  then circuit credit-terminations and speculation. */
template <typename P>
void
Router::saPhaseT(Cycle now)
{
    const int num_in = numInputPorts();
    const int num_vcs = cfg_.numVcs;

    // --- speculative SA ---
    if constexpr (P::kMasks) {
        // Request collection in ascending (in, vc) order — identical to
        // the generic double loop over the same candidates (VCs with an
        // empty FIFO never pass frontReady and have no side effects).
        std::uint64_t req_mask = 0;
        std::uint64_t spec_mask = 0;
        PortId req_out[64];
        int req_base = 0;
        for (PortId in = 0; in < num_in; ++in, req_base += num_vcs) {
            const std::uint64_t above = occMask_ >> req_base;
            if (above == 0)
                break;   // no occupied VC at this port or any later one
            std::uint64_t sub = above & ((1ull << num_vcs) - 1);
            while (sub != 0) {
                const VcId v = lowestSetBit(sub);
                sub &= sub - 1;
                const int idx = req_base + v;
                const InputVc &vc = inputs_[in].vc(v);
                if (!vc.frontReady(now))
                    continue;
                if (willUseCircuitT<P>(in, v))
                    continue;
                if (vc.state() == InputVc::State::Active) {
                    const RouteDecision &r = vc.route();
                    const int credits = vc.outVcExpress()
                        ? outputs_[r.outPort].expressVc(vc.outVc()).credits
                        : outputs_[r.outPort].vc(r.drop, vc.outVc()).credits;
                    if (credits <= 0) {
                        // SA arbitrates on credit availability
                        emitTelem(TelemetryEventClass::CreditStall, now, in,
                                  v);
                        continue;
                    }
                    req_mask |= 1ull << idx;
                    req_out[idx] = r.outPort;
                } else if (vc.state() == InputVc::State::WaitingVa) {
                    // Head whose VA just failed: speculative request.
                    req_mask |= 1ull << idx;
                    spec_mask |= 1ull << idx;
                    req_out[idx] = vc.route().outPort;
                }
            }
        }

        // Stage 1: one winning VC per input port. Inputs with no
        // requests are skipped — an all-false grant() round does not
        // rotate the arbiter either.
        const int num_out = numOutputPorts();
        std::uint64_t out_cand[64];
        std::uint64_t out_nonspec[64];
        for (int o = 0; o < num_out; ++o) {
            out_cand[o] = 0;
            out_nonspec[o] = 0;
        }
        VcId win_vc[64];
        for (PortId in = 0; in < num_in; ++in) {
            const std::uint32_t vcm = static_cast<std::uint32_t>(
                (req_mask >> (in * num_vcs)) & ((1u << num_vcs) - 1u));
            if (vcm == 0)
                continue;
            const int wv = sa_.grantInputVcs(in, vcm);
            const int idx = in * num_vcs + wv;
            win_vc[in] = wv;
            const PortId o = req_out[idx];
            out_cand[o] |= 1ull << in;
            if ((spec_mask >> idx & 1) == 0)
                out_nonspec[o] |= 1ull << in;
        }

        // Stage 2: one winning input per output port; non-speculative
        // requests have priority over speculative ones. Grants are
        // processed in ascending output order, exactly like iterating
        // the vector SwitchAllocator::allocate() returns.
        for (PortId o = 0; o < num_out; ++o) {
            const std::uint64_t cand = out_cand[o];
            if (cand == 0)
                continue;
            const std::uint64_t elig =
                out_nonspec[o] != 0 ? out_nonspec[o] : cand;
            const int wi = sa_.grantOutputInput(o, elig);
            const int idx = wi * num_vcs + win_vc[wi];
            processSaGrantT<P>({wi, win_vc[wi], o,
                                (spec_mask >> idx & 1) != 0},
                               now);
        }
    } else {
        std::vector<std::vector<SaRequest>> reqs(
            num_in, std::vector<SaRequest>(num_vcs));
        for (PortId in = 0; in < num_in; ++in) {
            for (VcId v = 0; v < num_vcs; ++v) {
                const InputVc &vc = inputs_[in].vc(v);
                if (!vc.frontReady(now))
                    continue;
                // Flits that will ride the standing pseudo-circuit do
                // not request SA at all (§3.B: "the following flits
                // coming to the same VC can bypass SA until the circuit
                // is terminated") — which also frees the allocator for
                // other VCs at this input port.
                if (willUseCircuitT<P>(in, v))
                    continue;
                if (vc.state() == InputVc::State::Active) {
                    const RouteDecision &r = vc.route();
                    const int credits = vc.outVcExpress()
                        ? outputs_[r.outPort].expressVc(vc.outVc()).credits
                        : outputs_[r.outPort].vc(r.drop, vc.outVc()).credits;
                    if (credits <= 0) {
                        // SA arbitrates on credit availability
                        emitTelem(TelemetryEventClass::CreditStall, now,
                                  in, v);
                        continue;
                    }
                    reqs[in][v] = {true, r.outPort, false};
                } else if (vc.state() == InputVc::State::WaitingVa) {
                    // Head whose VA just failed: speculative request.
                    reqs[in][v] = {true, vc.route().outPort, true};
                }
            }
        }
        for (const SaGrant &g : sa_.allocate(reqs))
            processSaGrantT<P>(g, now);
    }

    if (P::pc(*this))
        creditTerminations(now);
    if (P::spec(*this))
        speculate(now);
}

template <typename P>
void
Router::doVaT(PortId in_port, VcId in_vc, Cycle now)
{
    InputVc &vc = inputs_[in_port].vc(in_vc);
    const Flit &head = vc.front().flit;
    NOC_ASSERT(isHead(head.type), "VA requested by a non-head flit");
    const RouteDecision &route = vc.route();
    OutputPort &op = outputs_[route.outPort];
    NOC_ASSERT(op.connected(), "VA towards an unconnected output");

    // EVC: express VCs are preferred whenever the packet still travels at
    // least lmax hops in this dimension.
    if (P::evc(*this) && op.hasExpress() &&
        evc_.eligible(id_, head.dst, route)) {
        VcId best = kInvalidVc;
        int best_credits = -1;
        for (VcId w = evc_.expressBase(); w < cfg_.numVcs; ++w) {
            const OutputVcState &s = op.expressVc(w);
            if (!s.owned && s.credits > best_credits) {
                best = w;
                best_credits = s.credits;
            }
        }
        if (best != kInvalidVc) {
            OutputVcState &s = op.expressVc(best);
            s.owned = true;
            s.ownerPort = in_port;
            s.ownerVc = in_vc;
            vc.activate(best, /*express=*/true);
            ++stats_.vaGrants;
            emitTelem(TelemetryEventClass::VaGrant, now, in_port, in_vc);
            return;
        }
    }

    // Failed-VA memo: while the target port's version is unchanged since
    // this head last failed, choose() would fail again — skip it. This is
    // behaviour-preserving (not just faster): the memo is set only on
    // failure, and every mutation that can flip failure to success bumps
    // the port version.
    if (vc.vaFailStamp() == op.version())
        return;
    const auto [base, count] = vaRangeT<P>(head);
    const VcId w = va_.choose(op, route.drop, base, count, head.dst);
    if (w == kInvalidVc) {
        vc.setVaFailStamp(op.version());
        return;
    }
    op.allocate(route.drop, w, in_port, in_vc);
    vc.activate(w, /*express=*/false);
    ++stats_.vaGrants;
    emitTelem(TelemetryEventClass::VaGrant, now, in_port, in_vc);
}

template <typename P>
bool
Router::willUseCircuitT(PortId in_port, VcId in_vc) const
{
    if (!P::pc(*this))
        return false;
    const PseudoCircuitUnit::Register &reg = pc_.at(in_port);
    if (!reg.valid || reg.inVc != in_vc)
        return false;
    const InputVc &vc = inputs_[in_port].vc(in_vc);
    if (vc.state() == InputVc::State::Active) {
        return vc.route() == reg.route && !vc.outVcExpress() &&
            outputs_[reg.route.outPort]
                    .vc(reg.route.drop, vc.outVc()).credits > 0;
    }
    if (vc.state() == InputVc::State::WaitingVa) {
        if (!(vc.front().flit.route == reg.route))
            return false;
        // The head can take the circuit only if its independent VA can
        // succeed right now; otherwise fall back to the normal pipeline.
        const auto [base, count] = vaRangeT<P>(vc.front().flit);
        if (cfg_.vaPolicy == VaPolicy::Static) {
            const VcId w =
                VcAllocator::staticVc(base, count, vc.front().flit.dst);
            const OutputVcState &s =
                outputs_[reg.route.outPort].vc(reg.route.drop, w);
            return !s.owned && s.credits > 0;
        }
        return outputs_[reg.route.outPort].anyFreeCreditedVc(
            reg.route.drop, base, count);
    }
    return false;
}

template <typename P>
void
Router::traverseT(PortId in_port, Flit flit, const RouteDecision &route,
                  VcId out_vc, bool express_out, bool from_buffer,
                  Cycle now)
{
    usedIn_[in_port] = true;
    usedOut_[route.outPort] = true;
    ++stats_.xbarTraversals;
    emitTelem(TelemetryEventClass::SwitchTraverse, now, in_port, flit.vc);
    if (from_buffer)
        ++stats_.bufferReads;
    if (isHead(flit.type)) {
        ++stats_.headTraversals;
        noteLocality(in_port, route.outPort);
    }

    OutputPort &op = outputs_[route.outPort];
    NOC_ASSERT(op.connected(), "switch traversal to unconnected output");
    const OutputChannel &chan = topo_.output(id_, route.outPort);
    const VcId in_vc = flit.vc;

    if (express_out) {
        // EVC source: consume an express credit of the two-hop sink.
        OutputVcState &s = op.expressVc(out_vc);
        NOC_ASSERT(s.credits > 0, "express flit sent without credit");
        --s.credits;
        NOC_VCHK(vchk_, onCreditTaken(id_, route.outPort, route.drop,
                                      out_vc, /*express=*/true, now));
        if (isTail(flit.type)) {
            NOC_ASSERT(s.owned, "tail on an unowned express VC");
            s.owned = false;
            s.ownerPort = kInvalidPort;
            s.ownerVc = kInvalidVc;
        }
        flit.vc = out_vc;
        flit.evcHopsLeft = 1;
        ++flit.hops;
        const RouterId next = chan.drops[route.drop].router;
        {
            NOC_PROF_SCOPE(fineProf_, RouteCompute);
            flit.route = P::route(*this, next, flit.dst, flit.cls);
        }
        sentFlits.push_back({route.outPort, route.drop, flit});
    } else {
        op.takeCredit(route.drop, out_vc);
        NOC_VCHK(vchk_, onCreditTaken(id_, route.outPort, route.drop,
                                      out_vc, /*express=*/false, now));
        if (isTail(flit.type))
            op.release(route.drop, out_vc);
        flit.vc = out_vc;
        ++flit.hops;
        if (!chan.isTerminal()) {
            // One packet carries one lookahead route: the head computes
            // it and body/tail flits copy the head's stamp. Recomputing
            // per flit would split a packet across two paths when the
            // routing function changes mid-stream (fault/churn detour
            // generations) and corrupt downstream wormhole state.
            OutputVcState &ls = op.vc(route.drop, out_vc);
            if (isHead(flit.type)) {
                const RouterId next = chan.drops[route.drop].router;
                NOC_PROF_SCOPE(fineProf_, RouteCompute);
                ls.headLookahead = P::route(*this, next, flit.dst,
                                            flit.cls);
            }
            flit.route = ls.headLookahead;
        }
        sentFlits.push_back({route.outPort, route.drop, flit});
    }

    // Return the freed slot upstream (NI or router).
    const bool express_credit = P::evc(*this) &&
        evc_.isExpressVc(in_vc) && !topo_.input(id_, in_port).isTerminal();
    sentCredits.push_back({in_port, in_vc, express_credit});
}

} // namespace noc

#endif // NOC_ROUTER_ROUTER_PIPELINE_HPP
