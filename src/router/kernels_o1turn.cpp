/**
 * @file
 * Kernel instantiations for O1TURN routing on Mesh/CMesh
 * (one FastPolicy instantiation per pseudo-circuit scheme).
 */

#include "router/kernels.hpp"
#include "router/router_pipeline.hpp"
#include "routing/policies.hpp"

namespace noc {

const RouterOps *
o1turnKernel(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:
        return &routerOpsFor<FastPolicy<Scheme::Baseline, O1TurnRoute>>();
      case Scheme::Pseudo:
        return &routerOpsFor<FastPolicy<Scheme::Pseudo, O1TurnRoute>>();
      case Scheme::PseudoS:
        return &routerOpsFor<FastPolicy<Scheme::PseudoS, O1TurnRoute>>();
      case Scheme::PseudoB:
        return &routerOpsFor<FastPolicy<Scheme::PseudoB, O1TurnRoute>>();
      case Scheme::PseudoSB:
        return &routerOpsFor<FastPolicy<Scheme::PseudoSB, O1TurnRoute>>();
      case Scheme::Evc:
        break;   // EVC requires DOR and always runs generic
    }
    return nullptr;
}

} // namespace noc
