#include "router/kernels.hpp"

#include <typeinfo>

#include "routing/dor.hpp"
#include "routing/o1turn.hpp"
#include "routing/torus_dor.hpp"

namespace noc {

const RouterOps *
selectRouterOps(const SimConfig &cfg, const RoutingAlgorithm &routing,
                int num_in, int num_out)
{
    if (cfg.kernel != KernelChoice::Auto)
        return nullptr;
    // Fault and churn campaigns perturb delivery and routing in ways
    // only the generic path models (and wrap the routing object, which
    // would also fail the typeid test below).
    if (!cfg.faultSpec.empty() || !cfg.churnSpec.empty() ||
        cfg.dropCreditEvery != 0)
        return nullptr;
    if (cfg.scheme == Scheme::Evc)
        return nullptr;
    // Mask-kernel bounds: VC occupancy in one uint64, per-input VC
    // requests in one uint32, per-output input candidates in one uint64.
    if (cfg.numVcs > 16 || num_in * cfg.numVcs > 64 || num_out > 64)
        return nullptr;

    const std::type_info &t = typeid(routing);
    if (t == typeid(MeshDor))
        return meshDorKernel(cfg.scheme);
    if (t == typeid(O1TurnRouting))
        return o1turnKernel(cfg.scheme);
    if (t == typeid(TorusDor))
        return torusDorKernel(cfg.scheme);
    return nullptr;
}

} // namespace noc
