/**
 * @file
 * Separable input-first switch allocator with speculation support
 * (Peh & Dally, HPCA 2001 — the paper's baseline router, §3.A).
 *
 * Stage 1 arbitrates among the VCs of each input port; stage 2 arbitrates
 * among input-port winners for each output port. Non-speculative requests
 * (packets that already hold an output VC) beat speculative ones (heads
 * whose VA is still in flight); a speculative winner whose VA failed
 * wastes its crossbar slot, which is the speculation penalty.
 */

#ifndef NOC_ROUTER_SWITCH_ALLOCATOR_HPP
#define NOC_ROUTER_SWITCH_ALLOCATOR_HPP

#include <vector>

#include "common/types.hpp"
#include "router/arbiter.hpp"

namespace noc {

/** One switch request from an input VC. */
struct SaRequest
{
    bool valid = false;
    PortId outPort = kInvalidPort;
    bool speculative = false;
};

/** One switch grant. */
struct SaGrant
{
    PortId inPort = kInvalidPort;
    VcId inVc = kInvalidVc;
    PortId outPort = kInvalidPort;
    bool speculative = false;
};

class SwitchAllocator
{
  public:
    SwitchAllocator(int num_in_ports, int num_out_ports, int num_vcs);

    /**
     * Run one allocation round. `requests[in][vc]` describes each input
     * VC's request. At most one grant per input and per output port.
     */
    std::vector<SaGrant>
    allocate(const std::vector<std::vector<SaRequest>> &requests);

    /**
     * Mask-iteration stage entry points for the specialized kernels.
     * They drive the *same* rotating arbiters as allocate(), with
     * identical winner selection and priority updates, so a run making
     * the same requests through either interface sees the same grants.
     * Callers must skip zero masks (an all-false grant() round does not
     * rotate priority either).
     */
    int grantInputVcs(PortId in, std::uint32_t vc_mask)
    {
        return inputArbs_[in].grantMask(vc_mask);
    }
    int grantOutputInput(PortId out, std::uint64_t in_mask)
    {
        return outputArbs_[out].grantMask(in_mask);
    }

  private:
    int numVcs_;
    std::vector<RoundRobinArbiter> inputArbs_;   ///< per input, over VCs
    std::vector<RoundRobinArbiter> outputArbs_;  ///< per output, over inputs
};

} // namespace noc

#endif // NOC_ROUTER_SWITCH_ALLOCATOR_HPP
